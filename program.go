package eatss

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/lint"
	"repro/internal/ppcg"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

// Program is the staged-compilation artifact: everything about a
// (kernel, problem-sizes) pair that does not depend on tile sizes or
// model options, computed once by Analyze and reused by every
// downstream stage. Solving the EATSS model, compiling a tile choice,
// simulating it, sweeping a tile space and explaining a selection all
// consume the same dependence/reuse analysis; a Program performs it
// once where the free functions (SelectTiles, Run, ExploreSpace, ...)
// re-derive it per call.
//
// A Program is immutable and safe for concurrent use — the sweep
// engine shares one Program across all of its workers. Its Fingerprint
// identifies the (kernel, params) pair and keys the evaluation cache;
// rebuild the Program whenever the kernel or params change.
type Program struct {
	prog *analysis.Program
}

// Analyze stages a kernel: it validates the kernel, resolves the
// problem sizes (params override the kernel's defaults; nil keeps
// them), and computes the tile-independent analysis artifact the
// Program's methods reuse.
func Analyze(k *AffineKernel, params map[string]int64) (*Program, error) {
	return AnalyzeCtx(context.Background(), k, params)
}

// AnalyzeCtx is Analyze with the caller's context threaded through, so
// the "analysis.analyze" span nests under the caller's obs span.
func AnalyzeCtx(ctx context.Context, k *AffineKernel, params map[string]int64) (*Program, error) {
	if k == nil {
		return nil, fmt.Errorf("eatss: Analyze: nil kernel")
	}
	kk := k
	if params != nil {
		kk = k.WithParams(params)
	}
	if err := kk.Validate(); err != nil {
		return nil, fmt.Errorf("eatss: Analyze %s: %w", k.Name, err)
	}
	return &Program{prog: analysis.AnalyzeCtx(ctx, kk, nil)}, nil
}

// Kernel returns the analyzed kernel (with any Analyze params merged
// in). Callers must not mutate it; a Program assumes its kernel is
// frozen.
func (p *Program) Kernel() *AffineKernel { return p.prog.Kernel }

// FingerprintKernel computes the fingerprint a Program built by
// Analyze(k, params) would report, without staging the analysis — a
// hash of the kernel's canonical DSL text and the resolved problem
// sizes. Services caching Program artifacts (cmd/eatssd) use it to
// probe their cache before paying for the analysis; the invariant
// FingerprintKernel(k, params) == must-Analyze(k, params).Fingerprint()
// is pinned by a test.
func FingerprintKernel(k *AffineKernel, params map[string]int64) string {
	kk := k
	if params != nil {
		kk = k.WithParams(params)
	}
	return analysis.Fingerprint(kk, nil)
}

// Params returns a copy of the resolved problem sizes the Program was
// analyzed under.
func (p *Program) Params() map[string]int64 {
	out := make(map[string]int64, len(p.prog.Params))
	for name, v := range p.prog.Params {
		out[name] = v
	}
	return out
}

// Fingerprint identifies the (kernel, params) pair. Two Programs with
// equal fingerprints produce identical pipeline results; any kernel or
// params change yields a different fingerprint. It is the evaluation
// cache's key prefix.
func (p *Program) Fingerprint() string { return p.prog.Fingerprint() }

// SelectTiles runs the EATSS model generator and solver (Sec. IV)
// against the staged analysis.
func (p *Program) SelectTiles(g *GPU, opts Options) (*Selection, error) {
	return p.SelectTilesCtx(context.Background(), g, opts)
}

// SelectTilesCtx is SelectTiles with the caller's context threaded
// through for observability.
func (p *Program) SelectTilesCtx(ctx context.Context, g *GPU, opts Options) (*Selection, error) {
	return core.SelectTilesAnalyzed(ctx, p.prog, g, opts)
}

// DefaultTiles returns PPCG's default 32^d configuration for the
// Program's kernel.
func (p *Program) DefaultTiles() map[string]int64 { return ppcg.DefaultTiles(p.prog.Kernel) }

// Lint diagnoses the Program's kernel under its resolved problem sizes
// (see the package-level Lint). A validated kernel can still carry
// Warning-severity findings — dead arrays, uncoalescable access
// patterns, empty domains under these problem sizes.
func (p *Program) Lint() []Diag { return lint.Lint(p.prog.Kernel, p.prog.Params) }

// Compile maps a tile choice onto the GPU (the PPCG step), reusing the
// staged analysis. cfg.Params may override the Program's problem sizes
// for this compile only (the analysis is size-independent); nil keeps
// them.
func (p *Program) Compile(g *GPU, tiles map[string]int64, cfg RunConfig) (*MappedKernel, error) {
	return p.CompileCtx(context.Background(), g, tiles, cfg)
}

// CompileCtx is Compile with the caller's context threaded through.
func (p *Program) CompileCtx(ctx context.Context, g *GPU, tiles map[string]int64, cfg RunConfig) (*MappedKernel, error) {
	return compileAnalyzed(ctx, p.prog, g, tiles, cfg)
}

// Run compiles and simulates one tile configuration.
func (p *Program) Run(g *GPU, tiles map[string]int64, cfg RunConfig) (Result, error) {
	return p.RunCtx(context.Background(), g, tiles, cfg)
}

// RunCtx is Run with the caller's context threaded through. It honours
// cfg.Evaluator: under EvalSymbolic/EvalAuto the point is evaluated
// through the Program's closed-form plan when one derives.
func (p *Program) RunCtx(ctx context.Context, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, error) {
	res, _, err := evalAnalyzed(ctx, p.prog, g, tiles, cfg)
	return res, err
}

// EvalInfo attributes one evaluation to a backend — the exported view
// of the dispatch decision RunCtx makes internally.
type EvalInfo struct {
	// Symbolic: the point was evaluated through the closed-form plan.
	Symbolic bool
	// Residual: a symbolic evaluator was requested but the point fell
	// back to compile+simulate (unsupported config, underivable program,
	// or a per-point residual).
	Residual bool
}

// RunEvalCtx is RunCtx returning the backend attribution alongside the
// result, so serving layers can flag residual fallbacks per request.
func (p *Program) RunEvalCtx(ctx context.Context, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, EvalInfo, error) {
	res, info, err := evalAnalyzed(ctx, p.prog, g, tiles, cfg)
	return res, EvalInfo{Symbolic: info.symbolic, Residual: info.residual}, err
}

// SelectBest runs the paper's end-to-end protocol (one candidate per
// shared-memory split, best by performance-per-Watt) with the staged
// analysis shared across every solve and evaluation — nine model
// instantiations, one analysis.
func (p *Program) SelectBest(g *GPU, prec Precision) (*Best, error) {
	return p.SelectBestCtx(context.Background(), g, prec)
}

// SelectBestCtx is SelectBest with the caller's context threaded
// through.
func (p *Program) SelectBestCtx(ctx context.Context, g *GPU, prec Precision) (*Best, error) {
	return selectBestAnalyzed(ctx, p.prog, g, prec, nil, EvalSimulate)
}

// SelectBestEval is SelectBestCtx with an explicit evaluation backend
// (see the package-level SelectBestEval).
func (p *Program) SelectBestEval(ctx context.Context, g *GPU, prec Precision, eval Evaluator) (*Best, error) {
	return selectBestAnalyzed(ctx, p.prog, g, prec, nil, eval)
}

// ExploreSpace sweeps a tile space, sharing the staged analysis across
// the worker pool (see ExploreSpaceOpt for the sweep contracts).
func (p *Program) ExploreSpace(g *GPU, space []map[string]int64, cfg RunConfig) ([]SpacePoint, ExploreStats) {
	return p.ExploreSpaceOpt(context.Background(), g, space, cfg, SweepOptions{})
}

// ExploreSpaceOpt is ExploreSpace with explicit sweep options (worker
// count, memoization cache).
func (p *Program) ExploreSpaceOpt(ctx context.Context, g *GPU, space []map[string]int64, cfg RunConfig, opt SweepOptions) ([]SpacePoint, ExploreStats) {
	return exploreAnalyzed(ctx, p.prog, g, space, cfg, opt)
}

// PaperSpace returns the paper's 15-sizes-per-dimension exploration
// space for the Program's kernel.
func (p *Program) PaperSpace() []map[string]int64 {
	return ppcg.Space(p.prog.Kernel, ppcg.PaperSpaceSizes())
}

// Space enumerates a tile space over custom candidate sizes.
func (p *Program) Space(sizes []int64) []map[string]int64 {
	return ppcg.Space(p.prog.Kernel, sizes)
}

// Explain evaluates a selection's resource constraints from the staged
// analysis (see the package-level Explain).
func (p *Program) Explain(g *GPU, sel *Selection) ([]ConstraintSlack, string) {
	return core.ExplainAnalyzed(p.prog, g, sel)
}

// compileAnalyzed is the shared compile path: PPCG mapping from the
// staged analysis, then the optional time-tiling and register-tiling
// extensions. Nests where an extension is infeasible keep the plain
// mapping and are counted in the MappedKernel's fallback fields — they
// are expected outcomes on non-stencil or too-small-tile nests, not
// errors, but callers inspecting why a requested extension had no
// effect need the count (cmd/eatss -summary prints it).
func compileAnalyzed(ctx context.Context, prog *analysis.Program, g *GPU, tiles map[string]int64, cfg RunConfig) (*MappedKernel, error) {
	// Poll the context before starting: sweeps with per-request deadlines
	// (and the eatssd daemon) rely on a cancelled evaluation failing fast
	// with a context error instead of running to completion.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("eatss: compile %s on %s: %w", prog.Kernel.Name, g.Name, err)
	}
	mk, err := ppcg.CompileAnalyzed(ctx, prog, cfg.Params, tiles, g, codegen.Options{
		UseShared:   cfg.UseShared,
		SharedQuota: cfg.SharedQuota,
		Precision:   cfg.Precision,
	})
	if err != nil {
		return nil, err
	}
	if cfg.TimeTileFuse > 1 {
		for _, mn := range mk.Nests {
			if err := mn.ApplyTimeTiling(cfg.TimeTileFuse); err != nil {
				mk.TimeTileFallbacks++
			}
		}
	}
	if cfg.RegTile > 1 {
		for _, mn := range mk.Nests {
			if err := mn.ApplyRegisterTiling(cfg.RegTile, g.RegsPerThread); err != nil {
				mk.RegTileFallbacks++
			}
		}
	}
	if cfg.Verify.ShouldVerify(prog.Fingerprint() + "|" + g.Name + "|" + tileKey(tiles)) {
		if err := verify.CertifyKernel(mk, g); err != nil {
			return nil, fmt.Errorf("eatss: compiled mapping for %s on %s failed certification: %w",
				prog.Kernel.Name, g.Name, err)
		}
	}
	return mk, nil
}

// runAnalyzed compiles and simulates one tile configuration from a
// staged analysis.
func runAnalyzed(ctx context.Context, prog *analysis.Program, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, error) {
	mk, err := compileAnalyzed(ctx, prog, g, tiles, cfg)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("eatss: simulate %s on %s: %w", prog.Kernel.Name, g.Name, err)
	}
	return gpusim.SimulateCtx(ctx, mk, g), nil
}

// symbolicSupported reports whether a RunConfig is inside the
// closed-form domain: the mapping extensions (time-tile fusion,
// register micro-tiles) restructure the launch in ways the plan does
// not model, and certification requires a MappedKernel to certify.
func symbolicSupported(cfg RunConfig) bool {
	return cfg.TimeTileFuse <= 1 && cfg.RegTile <= 1 && cfg.Verify == VerifyOff
}

// planOrErr memoizes a Derive outcome — failures too, so an underivable
// program pays the attempt once, not once per point.
type planOrErr struct {
	plan *symbolic.Plan
	err  error
}

// symbolicPlan returns the Program's closed-form plan for (g, cfg),
// deriving it on first use and staging it on the analysis artifact the
// way the per-nest skeletons are staged: every sweep worker and every
// later call sharing the Program shares the plan.
func symbolicPlan(prog *analysis.Program, g *GPU, cfg RunConfig) (*symbolic.Plan, error) {
	key := fmt.Sprintf("symbolic|%+v|%t|%d|%v|%s",
		*g, cfg.UseShared, cfg.SharedQuota, cfg.Precision, tileKey(cfg.Params))
	v := prog.Memo(key, func() any {
		plan, err := symbolic.Derive(prog, g, symbolic.Config{
			UseShared:   cfg.UseShared,
			SharedQuota: cfg.SharedQuota,
			Precision:   cfg.Precision,
		}, cfg.Params)
		return planOrErr{plan: plan, err: err}
	}).(planOrErr)
	return v.plan, v.err
}

// evalInfo attributes one evaluation to a backend.
type evalInfo struct {
	// symbolic: the point was evaluated through the closed-form plan.
	// residual: a symbolic evaluator was requested but the point fell
	// back to compile+simulate (unsupported config, underivable
	// program, or a per-point residual).
	symbolic, residual bool
}

// evalAnalyzed is the evaluation seam every consumer of "what does this
// tile point cost" goes through (sweep workers, SelectBest candidates,
// Run, autotune probes, the eatssd service): it dispatches between the
// closed-form symbolic backend and per-point compile+simulate according
// to cfg.Evaluator, with the simulator as the residual fallback.
func evalAnalyzed(ctx context.Context, prog *analysis.Program, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, evalInfo, error) {
	if cfg.Evaluator == EvalSimulate || !symbolicSupported(cfg) {
		res, err := runAnalyzed(ctx, prog, g, tiles, cfg)
		// A symbolic request routed to the simulator is a residual
		// fallback; a plain simulate request is just the default path.
		return res, evalInfo{residual: cfg.Evaluator != EvalSimulate}, err
	}
	if plan, derr := symbolicPlan(prog, g, cfg); derr == nil {
		if err := ctx.Err(); err != nil {
			return Result{}, evalInfo{}, fmt.Errorf("eatss: evaluate %s on %s: %w", prog.Kernel.Name, g.Name, err)
		}
		res, err := plan.Eval(tiles)
		if err == nil || !errors.Is(err, symbolic.ErrResidual) {
			return res, evalInfo{symbolic: true}, err
		}
	}
	res, err := runAnalyzed(ctx, prog, g, tiles, cfg)
	return res, evalInfo{residual: true}, err
}
