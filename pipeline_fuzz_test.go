package eatss_test

// Whole-pipeline robustness: randomly generated (but valid) affine kernels
// must flow through dependence analysis, scheduling, EATSS, mapping and
// simulation without panics, and every success must satisfy the physical
// invariants. This is the widest net in the suite: it exercises kernel
// shapes no catalog entry has.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/deps"
	"repro/internal/sched"
)

func TestRandomKernelsThroughPipeline(t *testing.T) {
	g := eatss.GA100()
	solved, mapped := 0, 0
	residualPoints := 0
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := affine.RandomKernel(r)
		if err := k.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid kernel: %v", seed, err)
		}

		// Analysis must be sound on a shrunken instance.
		small := map[string]int64{}
		for p := range k.Params {
			small[p] = 8
		}
		for ni := range k.Nests {
			if v, err := deps.VerifyParallelism(&k.Nests[ni], small); err != nil {
				t.Fatalf("seed %d nest %d: oracle error: %v", seed, ni, err)
			} else if len(v) > 0 {
				t.Fatalf("seed %d nest %d: unsound parallelism: %v", seed, ni, v)
			}
		}

		// Scheduling must keep the kernel valid.
		sched.ScheduleKernel(k)
		if err := k.Validate(); err != nil {
			t.Fatalf("seed %d: scheduling broke the kernel: %v", seed, err)
		}

		// Lint oracle: a generator kernel that passes Validate must lint
		// without panicking and without Error-severity findings (warnings
		// — dead iterators, uncoalescable patterns — are expected on
		// random shapes).
		if diags := eatss.Lint(k, nil); eatss.LintHasErrors(diags) {
			t.Fatalf("seed %d: valid kernel has lint errors:\n%s\nkernel:\n%s",
				seed, eatss.RenderDiags(diags), k)
		}

		// EATSS with warp-fraction fallback; nests without parallel loops
		// are legitimately rejected. Every accepted selection must pass
		// independent certification (the verify oracle) — both inside the
		// solve (Verify=All) and post-hoc.
		var sel *eatss.Selection
		for _, wf := range eatss.WarpFractions {
			s, err := eatss.SelectTiles(k, g, eatss.Options{
				SplitFactor: 0.5, WarpFraction: wf,
				Precision: eatss.FP64, ProblemSizeAware: true,
				Verify: eatss.VerifyAll,
			})
			if err == nil {
				sel = s
				break
			}
		}
		if sel == nil {
			continue
		}
		solved++
		if err := eatss.Certify(k, g, sel); err != nil {
			t.Fatalf("seed %d: accepted selection failed certification: %v\nkernel:\n%s", seed, err, k)
		}
		tiles := sel.Tiles

		res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
			UseShared: true, Precision: eatss.FP64, Verify: eatss.VerifyAll,
		})
		if err != nil {
			// Failing to map (execution-model limits) is a legitimate
			// outcome on random shapes; a certification Violation on a
			// mapping that WAS produced is always a bug.
			var v *eatss.Violation
			if errors.As(err, &v) {
				t.Fatalf("seed %d: compiled mapping failed certification: %v\nkernel:\n%s", seed, err, k)
			}
			continue
		}
		mapped++
		if res.TimeSec <= 0 || res.EnergyJ <= 0 ||
			res.AvgPowerW < (g.ConstantWatts+g.StaticWatts)*0.99 ||
			res.AvgPowerW > g.TDPWatts*1.01 {
			t.Fatalf("seed %d: unphysical result %+v for kernel:\n%s", seed, res, k)
		}

		// Attribution oracle: every successful run must decompose into a
		// conservation-checked profile — components non-negative, summing
		// to EnergyJ per nest and in total, per-array shares reproducing
		// each level — on kernel shapes no catalog entry has.
		p, err := eatss.ProfileOf(&res, tiles)
		if err != nil {
			t.Fatalf("seed %d: profile failed: %v\nkernel:\n%s", seed, err, k)
		}
		if err := p.Check(1e-9); err != nil {
			t.Fatalf("seed %d: attribution broke conservation: %v\nkernel:\n%s", seed, err, k)
		}

		// Backend-parity oracle: on shapes no catalog entry has, the
		// closed-form evaluator must agree with the simulator — or fall
		// back explicitly (counted, below). Single-point sweeps with
		// caching off surface the backend attribution per evaluation.
		prog, err := eatss.Analyze(k, nil)
		if err != nil {
			t.Fatalf("seed %d: analyze failed: %v", seed, err)
		}
		ctx := context.Background()
		cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
		simCfg, symCfg := cfg, cfg
		symCfg.Evaluator = eatss.EvalAuto
		point := []map[string]int64{tiles}
		opt := eatss.SweepOptions{Cache: eatss.NoCache, Workers: 1}
		simPts, _ := prog.ExploreSpaceOpt(ctx, g, point, simCfg, opt)
		symPts, symStats := prog.ExploreSpaceOpt(ctx, g, point, symCfg, opt)
		if len(simPts) != len(symPts) {
			t.Fatalf("seed %d: backends disagree on validity: %d vs %d points\nkernel:\n%s",
				seed, len(simPts), len(symPts), k)
		}
		if symStats.Symbolic+symStats.Residual != 1 {
			t.Fatalf("seed %d: auto evaluation attributed to no backend", seed)
		}
		residualPoints += symStats.Residual
		if len(simPts) == 1 {
			a, b := simPts[0].Result, symPts[0].Result
			if a.Flops != b.Flops || a.L2Sectors != b.L2Sectors || a.DRAMBytes != b.DRAMBytes {
				t.Fatalf("seed %d: backend integer counters diverge: %+v vs %+v\nkernel:\n%s",
					seed, a, b, k)
			}
			if d := a.EnergyJ - b.EnergyJ; d > 1e-9*a.EnergyJ || d < -1e-9*a.EnergyJ {
				t.Fatalf("seed %d: backend energies diverge: %g vs %g\nkernel:\n%s",
					seed, a.EnergyJ, b.EnergyJ, k)
			}
		}
	}
	// The generator must actually exercise the pipeline, not just get
	// rejected — and the symbolic backend must cover most of what maps
	// (residual fallbacks are legal, a backend that always falls back is
	// dead code).
	if solved < 60 || mapped < 50 {
		t.Fatalf("only %d/120 kernels solved and %d mapped — generator too narrow", solved, mapped)
	}
	if residualPoints > mapped/2 {
		t.Fatalf("symbolic backend fell back on %d of %d mapped kernels", residualPoints, mapped)
	}
}

// FuzzPipeline is the false-prune property: on randomly generated
// kernels, every point the static feasibility region would prune from a
// sweep must (a) carry a certificate that replays under the independent
// math/big certifier and (b) be unsatisfiable when re-decided by the
// SMT solver — and the solver's own selections must never be pruned.
// `go test -fuzz=FuzzPipeline` explores new shapes; the seed corpus
// runs on every plain `go test`.
func FuzzPipeline(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 98765} {
		f.Add(seed)
	}
	g := eatss.GA100()
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		k := affine.RandomKernel(r)
		if k.Validate() != nil {
			t.Skip("generator rejected the shape")
		}
		prog, err := eatss.Analyze(k, nil)
		if err != nil {
			t.Skip("kernel does not analyze")
		}
		region := prog.FeasibleRegion(g, eatss.RunConfig{Precision: eatss.FP64})
		cfg := eatss.SweepPruneConfig(eatss.FP64)

		space := eatss.Space(k, []int64{4, 16, 64, 512})
		if len(space) > 4096 {
			space = space[:4096]
		}
		smtChecked := 0
		for _, tiles := range space {
			cert := region.Check(tiles)
			if cert == nil {
				continue
			}
			if err := eatss.CertifyPrune(k, k.Params, g, cfg, cert); err != nil {
				t.Fatalf("false prune of %v: %v\nkernel:\n%s", tiles, err, k)
			}
			// Solver re-decisions are the expensive half; a bounded
			// sample per kernel keeps the corpus fast while -fuzz still
			// accumulates coverage across inputs.
			if smtChecked < 24 {
				if !region.UnsatSMT(tiles) {
					t.Fatalf("solver finds pruned point %v satisfiable (claimed %s)\nkernel:\n%s",
						tiles, cert.Constraint, k)
				}
				smtChecked++
			}
		}

		for _, wf := range eatss.WarpFractions {
			sel, err := eatss.SelectTiles(k, g, eatss.Options{
				SplitFactor: 0.5, WarpFraction: wf,
				Precision: eatss.FP64, ProblemSizeAware: true,
			})
			if err != nil {
				continue
			}
			if cert := region.Check(sel.Tiles); cert != nil {
				t.Fatalf("solver selection %v pruned: %s\nkernel:\n%s", sel.Tiles, cert, k)
			}
			break
		}
	})
}
