package eatss_test

// Whole-pipeline robustness: randomly generated (but valid) affine kernels
// must flow through dependence analysis, scheduling, EATSS, mapping and
// simulation without panics, and every success must satisfy the physical
// invariants. This is the widest net in the suite: it exercises kernel
// shapes no catalog entry has.

import (
	"errors"
	"math/rand"
	"testing"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/deps"
	"repro/internal/sched"
)

func TestRandomKernelsThroughPipeline(t *testing.T) {
	g := eatss.GA100()
	solved, mapped := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := affine.RandomKernel(r)
		if err := k.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid kernel: %v", seed, err)
		}

		// Analysis must be sound on a shrunken instance.
		small := map[string]int64{}
		for p := range k.Params {
			small[p] = 8
		}
		for ni := range k.Nests {
			if v, err := deps.VerifyParallelism(&k.Nests[ni], small); err != nil {
				t.Fatalf("seed %d nest %d: oracle error: %v", seed, ni, err)
			} else if len(v) > 0 {
				t.Fatalf("seed %d nest %d: unsound parallelism: %v", seed, ni, v)
			}
		}

		// Scheduling must keep the kernel valid.
		sched.ScheduleKernel(k)
		if err := k.Validate(); err != nil {
			t.Fatalf("seed %d: scheduling broke the kernel: %v", seed, err)
		}

		// Lint oracle: a generator kernel that passes Validate must lint
		// without panicking and without Error-severity findings (warnings
		// — dead iterators, uncoalescable patterns — are expected on
		// random shapes).
		if diags := eatss.Lint(k, nil); eatss.LintHasErrors(diags) {
			t.Fatalf("seed %d: valid kernel has lint errors:\n%s\nkernel:\n%s",
				seed, eatss.RenderDiags(diags), k)
		}

		// EATSS with warp-fraction fallback; nests without parallel loops
		// are legitimately rejected. Every accepted selection must pass
		// independent certification (the verify oracle) — both inside the
		// solve (Verify=All) and post-hoc.
		var sel *eatss.Selection
		for _, wf := range eatss.WarpFractions {
			s, err := eatss.SelectTiles(k, g, eatss.Options{
				SplitFactor: 0.5, WarpFraction: wf,
				Precision: eatss.FP64, ProblemSizeAware: true,
				Verify: eatss.VerifyAll,
			})
			if err == nil {
				sel = s
				break
			}
		}
		if sel == nil {
			continue
		}
		solved++
		if err := eatss.Certify(k, g, sel); err != nil {
			t.Fatalf("seed %d: accepted selection failed certification: %v\nkernel:\n%s", seed, err, k)
		}
		tiles := sel.Tiles

		res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
			UseShared: true, Precision: eatss.FP64, Verify: eatss.VerifyAll,
		})
		if err != nil {
			// Failing to map (execution-model limits) is a legitimate
			// outcome on random shapes; a certification Violation on a
			// mapping that WAS produced is always a bug.
			var v *eatss.Violation
			if errors.As(err, &v) {
				t.Fatalf("seed %d: compiled mapping failed certification: %v\nkernel:\n%s", seed, err, k)
			}
			continue
		}
		mapped++
		if res.TimeSec <= 0 || res.EnergyJ <= 0 ||
			res.AvgPowerW < (g.ConstantWatts+g.StaticWatts)*0.99 ||
			res.AvgPowerW > g.TDPWatts*1.01 {
			t.Fatalf("seed %d: unphysical result %+v for kernel:\n%s", seed, res, k)
		}

		// Attribution oracle: every successful run must decompose into a
		// conservation-checked profile — components non-negative, summing
		// to EnergyJ per nest and in total, per-array shares reproducing
		// each level — on kernel shapes no catalog entry has.
		p, err := eatss.ProfileOf(&res, tiles)
		if err != nil {
			t.Fatalf("seed %d: profile failed: %v\nkernel:\n%s", seed, err, k)
		}
		if err := p.Check(1e-9); err != nil {
			t.Fatalf("seed %d: attribution broke conservation: %v\nkernel:\n%s", seed, err, k)
		}
	}
	// The generator must actually exercise the pipeline, not just get
	// rejected.
	if solved < 60 || mapped < 50 {
		t.Fatalf("only %d/120 kernels solved and %d mapped — generator too narrow", solved, mapped)
	}
}
