package eatss_test

import (
	"os"
	"path/filepath"
	"testing"

	eatss "repro"
)

// TestDSLKernelFilesEndToEnd parses every shipped .kdsl example, schedules
// it, and runs the full pipeline on the GA100: the files double as user
// documentation and must stay working.
func TestDSLKernelFilesEndToEnd(t *testing.T) {
	files, err := filepath.Glob("testdata/kernels/*.kdsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("only %d .kdsl files", len(files))
	}
	g := eatss.GA100()
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		k, err := eatss.ParseKernel(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		eatss.Schedule(k)
		best, err := eatss.SelectBest(k, g, eatss.FP64, nil)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r := best.Chosen.Result
		if r.GFLOPS <= 0 || r.EnergyJ <= 0 {
			t.Fatalf("%s: degenerate result %+v", path, r)
		}
		def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
		if err != nil {
			t.Fatalf("%s: default failed: %v", path, err)
		}
		t.Logf("%s: EATSS %.0f GF (PPW %.2f) vs default %.0f GF (PPW %.2f)",
			filepath.Base(path), r.GFLOPS, r.PPW, def.GFLOPS, def.PPW)
	}
}
