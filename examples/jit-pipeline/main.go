// jit-pipeline demonstrates the model-generator-as-a-library use case of
// Sec. IV-M (iii): a JIT-style compilation service (as found in deep
// learning frameworks) that receives kernels with concrete problem sizes
// at run time and must pick tile sizes in milliseconds, per device.
//
// The example registers a small "workload stream" of kernels with varying
// shapes, selects tiles for each on both GPUs with a per-device cache,
// and reports the end-to-end selection latency — the property Sec. V-G
// measures (the paper: ~1.3 s with Z3; the finite-domain solver here is
// far faster, with the same 4-7 solver calls per model).
//
// Run with:
//
//	go run ./examples/jit-pipeline
package main

import (
	"fmt"
	"log"
	"time"

	eatss "repro"
)

// request is one JIT compilation request: kernel + shape + device.
type request struct {
	kernel string
	params map[string]int64
	gpu    *eatss.GPU
}

// tileCache memoizes selections per (device, kernel, shape).
type tileCache struct {
	entries map[string]*eatss.Selection
	hits    int
	misses  int
}

func key(r request) string {
	return fmt.Sprintf("%s|%s|%v", r.gpu.Name, r.kernel, r.params)
}

func (c *tileCache) lookup(r request) (*eatss.Selection, error) {
	if sel, ok := c.entries[key(r)]; ok {
		c.hits++
		return sel, nil
	}
	c.misses++
	k, err := eatss.Kernel(r.kernel)
	if err != nil {
		return nil, err
	}
	// Stage the analysis once per miss; the warp-fraction fallback loop
	// re-solves against the same artifact instead of re-analyzing.
	prog, err := eatss.Analyze(k, r.params)
	if err != nil {
		return nil, err
	}
	// Problem-size-aware selection with warp-fraction fallback.
	var lastErr error
	for _, wf := range eatss.WarpFractions {
		opts := eatss.Options{SplitFactor: 0.5, WarpFraction: wf,
			Precision: eatss.FP64, ProblemSizeAware: true}
		sel, err := prog.SelectTiles(r.gpu, opts)
		if err == nil {
			c.entries[key(r)] = sel
			return sel, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func main() {
	ga, xv := eatss.GA100(), eatss.Xavier()

	// A stream of shapes, as a DL framework would see across layers:
	// repeated shapes must hit the cache.
	var stream []request
	for _, n := range []int64{512, 1024, 2048, 1024, 512, 2048} {
		stream = append(stream, request{"gemm", map[string]int64{"NI": n, "NJ": n, "NK": n}, ga})
	}
	for _, n := range []int64{1024, 2048, 1024} {
		stream = append(stream, request{"conv-2d", map[string]int64{"NI": n, "NJ": n, "KW": 9}, ga})
	}
	stream = append(stream,
		request{"gemm", map[string]int64{"NI": 1024, "NJ": 1024, "NK": 1024}, xv},
		request{"mttkrp", map[string]int64{"I": 128, "J": 128, "K": 128, "L": 128}, ga},
	)

	cache := &tileCache{entries: map[string]*eatss.Selection{}}
	start := time.Now()
	for i, r := range stream {
		t0 := time.Now()
		sel, err := cache.lookup(r)
		if err != nil {
			log.Fatalf("request %d (%s): %v", i, r.kernel, err)
		}
		fmt.Printf("req %2d  %-8s %-7s shape=%v -> tiles=%v (%d solver calls, %v)\n",
			i, r.kernel, r.gpu.Name, r.params, sel.Tiles, sel.SolverCalls,
			time.Since(t0).Round(time.Microsecond))
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d requests in %v (%.1f req/s), cache: %d hits / %d misses\n",
		len(stream), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds(), cache.hits, cache.misses)
	fmt.Println("=> fast enough to sit inside a JIT compilation pipeline (Sec. IV-M iii).")
}
