// Quickstart: select energy-aware tile sizes for one kernel and compare
// them against PPCG's default configuration on the simulated GA100.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eatss "repro"
)

func main() {
	// 1. Pick a kernel from the built-in catalog (Polybench gemm, with
	//    the EXTRALARGE dataset the paper uses on the GA100).
	k, err := eatss.Kernel("gemm")
	if err != nil {
		log.Fatal(err)
	}
	g := eatss.GA100()

	// 2. Stage the kernel: Analyze computes the tile-independent
	//    dependence/reuse analysis once; every step below reuses it.
	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the EATSS model generator + solver (Sec. IV of the paper).
	//    DefaultOptions reproduce the paper's walkthrough: 50% of the
	//    combined L1+shared pool to shared memory, warp-alignment 16,
	//    double precision.
	sel, err := prog.SelectTiles(g, eatss.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EATSS selection (expect Ti=16, Tj=384, Tk=16 — the paper's result):")
	fmt.Print(sel.String())

	// 4. Compile (PPCG-style mapping) and simulate the configuration.
	res, err := prog.Run(g, sel.Tiles, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare against the default 32^d tiling.
	def, err := prog.Run(g, prog.DefaultTiles(), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %12s %10s %10s %8s\n", "configuration", "GFLOP/s", "power (W)", "energy (J)", "PPW")
	fmt.Printf("%-16s %12.1f %10.1f %10.2f %8.2f\n", "EATSS", res.GFLOPS, res.AvgPowerW, res.EnergyJ, res.PPW)
	fmt.Printf("%-16s %12.1f %10.1f %10.2f %8.2f\n", "default PPCG", def.GFLOPS, def.AvgPowerW, def.EnergyJ, def.PPW)
	fmt.Printf("\nEATSS vs default: %.2fx performance, %.2fx performance-per-Watt, %.2fx energy\n",
		res.GFLOPS/def.GFLOPS, res.PPW/def.PPW, res.EnergyJ/def.EnergyJ)
}
