// custom-kernel demonstrates the full library surface on a kernel that is
// NOT in the built-in catalog:
//
//  1. define the kernel in the affine DSL (here written with a
//     deliberately GPU-hostile loop order),
//  2. normalize the loop order with the scheduler,
//  3. run EATSS to select energy-aware tiles,
//  4. compare against the PPCG default,
//  5. stack the beyond-paper extensions (register micro-tiles) on top.
//
// Run with:
//
//	go run ./examples/custom-kernel
package main

import (
	"fmt"
	"log"

	eatss "repro"
)

// A blocked Gram-matrix kernel (G = X^T X), written reduction-outermost —
// the order a naive port might use.
const src = `
kernel gram {
  param N = 2048, D = 512
  array X[D][N], G[N][N]
  nest gram {
    for d in 0..D
    for i in 0..N
    for j in 0..N {
      S0: G[i][j] += X[d][i] * X[d][j]
    }
  }
}
`

func main() {
	k, err := eatss.ParseKernel(src)
	if err != nil {
		log.Fatal(err)
	}
	g := eatss.GA100()

	// 2. Normalize the loop order (the scheduler moves the parallel i/j
	//    band outward and the d reduction inward, when legal).
	for _, plan := range eatss.Schedule(k) {
		fmt.Printf("schedule %s: order %v (changed=%v)\n", plan.Nest, plan.Order, plan.Changed)
	}

	// 3. EATSS tile selection with the paper's full protocol.
	best, err := eatss.SelectBest(k, g, eatss.FP64, nil)
	if err != nil {
		log.Fatal(err)
	}
	sel := best.Chosen
	fmt.Printf("\nEATSS: split=%.2f tiles=%v (%d solver calls)\n",
		sel.SharedFrac, sel.Selection.Tiles, best.SolverCalls)

	// 4. Compare against the PPCG default.
	def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s %10s %9s %8s\n", "configuration", "GFLOP/s", "power(W)", "PPW")
	fmt.Printf("%-22s %10.1f %9.1f %8.2f\n", "default PPCG (32^d)", def.GFLOPS, def.AvgPowerW, def.PPW)
	fmt.Printf("%-22s %10.1f %9.1f %8.2f\n", "EATSS", sel.Result.GFLOPS, sel.Result.AvgPowerW, sel.Result.PPW)

	// 5. Stack register micro-tiles on the EATSS configuration.
	for _, r := range []int64{2, 4} {
		res, err := eatss.Run(k, g, sel.Selection.Tiles, eatss.RunConfig{
			UseShared: sel.SharedFrac > 0, Precision: eatss.FP64, RegTile: r,
		})
		if err != nil {
			continue
		}
		fmt.Printf("%-22s %10.1f %9.1f %8.2f\n",
			fmt.Sprintf("EATSS + regtile r=%d", r), res.GFLOPS, res.AvgPowerW, res.PPW)
	}

	fmt.Printf("\nEATSS vs default: %.2fx PPW; see the regtile rows for the headroom vendor-style\n", sel.Result.PPW/def.PPW)
	fmt.Println("micro-tiling adds on top of energy-aware tile selection.")
}
