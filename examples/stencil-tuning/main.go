// stencil-tuning reproduces the Sec. V-D case study: high-dimensional
// kernels (heat-3d, conv-2d, mttkrp) need warp fractions below a full
// warp, because tiles constrained to multiples of 32 (or even 16) cannot
// satisfy the resource envelope of 3-D data tiles. The example sweeps
// warp fractions and shared-memory splits per kernel and prints which
// formulations are even feasible, then compares the best configuration
// against the default PPCG tiling.
//
// Run with:
//
//	go run ./examples/stencil-tuning
package main

import (
	"fmt"
	"log"

	eatss "repro"
)

func main() {
	g := eatss.GA100()
	for _, name := range eatss.NonPolybenchKernels() {
		k, err := eatss.Kernel(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (depth %d) on %s ===\n", name, k.MaxDepth(), g.Name)

		type candidate struct {
			wf, split float64
			sel       *eatss.Selection
			res       eatss.Result
		}
		var best *candidate
		for _, split := range []float64{0.0, 0.5} {
			for _, wf := range []float64{1.0, 0.5, 0.25, 0.125} {
				opts := eatss.Options{
					SplitFactor:      split,
					WarpFraction:     wf,
					Precision:        eatss.FP64,
					ProblemSizeAware: true,
				}
				sel, err := eatss.SelectTiles(k, g, opts)
				if err != nil {
					fmt.Printf("  wf=%.3f split=%.2f: infeasible (tiles must be multiples of %.0f)\n",
						wf, split, wf*32)
					continue
				}
				res, err := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{
					UseShared: split > 0, Precision: eatss.FP64,
				})
				if err != nil {
					continue
				}
				fmt.Printf("  wf=%.3f split=%.2f: tiles=%v  %.1f GFLOP/s  %.2f J  PPW %.2f\n",
					wf, split, sel.Tiles, res.GFLOPS, res.EnergyJ, res.PPW)
				c := &candidate{wf: wf, split: split, sel: sel, res: res}
				if best == nil || c.res.PPW > best.res.PPW {
					best = c
				}
			}
		}
		if best == nil {
			fmt.Println("  no feasible configuration")
			continue
		}

		def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
			UseShared: best.split > 0, Precision: eatss.FP64,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  best: wf=%.3f split=%.2f => %.2fx speedup, %.2fx energy vs default PPCG\n\n",
			best.wf, best.split, def.TimeSec/best.res.TimeSec, best.res.EnergyJ/def.EnergyJ)
	}
}
