// gemm-energy reproduces the paper's motivation study (Secs. I and II):
//
//  1. Fig. 1 — gemm's average power grows with problem size and shifts
//     from a static-dominated to a dynamic-dominated regime.
//  2. Fig. 2 — an exhaustive tile-space exploration of 2mm (3,375
//     variants) shows wide performance AND energy spreads, with
//     same-performance variants differing in energy: the reason energy
//     must be a first-class objective in tile selection.
//
// Run with:
//
//	go run ./examples/gemm-energy
package main

import (
	"fmt"
	"log"
	"sort"

	eatss "repro"
)

func main() {
	g := eatss.GA100()

	fmt.Println("--- Fig. 1: gemm power vs problem size (GA100) ---")
	k, err := eatss.Kernel("gemm")
	if err != nil {
		log.Fatal(err)
	}
	idle := g.ConstantWatts + g.StaticWatts
	fmt.Printf("%8s %12s %14s %12s\n", "N=M=K", "total (W)", "dynamic (W)", "GFLOP/s")
	for _, n := range []int64{1000, 2000, 3000, 4000, 5000, 6000} {
		res, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
			Params:    map[string]int64{"NI": n, "NJ": n, "NK": n},
			UseShared: true, Precision: eatss.FP64,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12.1f %14.1f %12.1f\n", n, res.AvgPowerW, res.AvgPowerW-idle, res.GFLOPS)
	}

	fmt.Println("\n--- Fig. 2: the 2mm tile space (3,375 variants) ---")
	k2, err := eatss.Kernel("2mm")
	if err != nil {
		log.Fatal(err)
	}
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	pts, _ := eatss.ExploreSpace(k2, g, eatss.PaperSpace(k2), cfg)
	def, err := eatss.Run(k2, g, eatss.DefaultTiles(k2), cfg)
	if err != nil {
		log.Fatal(err)
	}

	perfs := make([]float64, len(pts))
	for i, p := range pts {
		perfs[i] = p.Result.GFLOPS
	}
	sort.Float64s(perfs)
	fmt.Printf("variants: %d; default (P): %.1f GFLOP/s, %.2f J\n", len(pts), def.GFLOPS, def.EnergyJ)
	fmt.Printf("perf range: %.1f .. %.1f GFLOP/s (median %.1f)\n",
		perfs[0], perfs[len(perfs)-1], perfs[len(perfs)/2])

	// The paper's key observation: variants at the same performance
	// level differ in energy. Bucket variants within 5% of the default
	// performance and report their energy spread.
	var sameSpeedEnergies []float64
	for _, p := range pts {
		if p.Result.GFLOPS > def.GFLOPS*0.95 && p.Result.GFLOPS < def.GFLOPS*1.05 {
			sameSpeedEnergies = append(sameSpeedEnergies, p.Result.EnergyJ)
		}
	}
	sort.Float64s(sameSpeedEnergies)
	if len(sameSpeedEnergies) >= 2 {
		lo := sameSpeedEnergies[0]
		hi := sameSpeedEnergies[len(sameSpeedEnergies)-1]
		fmt.Printf("variants within +-5%% of default performance: %d\n", len(sameSpeedEnergies))
		fmt.Printf("their energy spread: %.2f .. %.2f J (%.0f%% headroom at equal speed)\n",
			lo, hi, 100*(hi-lo)/hi)
	}

	fmt.Println("\n=> the same-performance energy spread is why EATSS treats energy as a primary objective.")
}
