package eatss

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/feas"
	"repro/internal/verify"
)

// FeasibleRegion is the static tile-space feasibility analysis of
// internal/feas: per-dimension interval bounds plus labeled monotone
// capacity predicates, derived once per (Program, GPU, Config) without
// the solver. Check judges a point, Empty certifies a whole region
// infeasible, TightenedBounds is the feasible box the autotuners seed
// from.
type FeasibleRegion = feas.Region

// PruneCert is a machine-checkable infeasibility verdict naming the
// violated constraint and its interval witness (see CertifyPrune).
type PruneCert = feas.PruneCert

// FeasibleRegion derives (and memoizes on the Program, like the
// symbolic plans) the sweep-prunable feasibility region for g under
// cfg: the option-free constraint family — the problem-size-aware tile
// domains and the register bound — that must hold for a point to be
// feasible under any model Options. Only cfg.Precision participates;
// a service caching Programs per fingerprint therefore caches regions
// per fingerprint too.
func (p *Program) FeasibleRegion(g *GPU, cfg RunConfig) *FeasibleRegion {
	return feasRegion(p.prog, g, feas.SweepConfig(cfg.Precision))
}

// feasRegion memoizes one Derive per (GPU, Config) on the analysis
// artifact, so every sweep worker and every request sharing the
// Program shares the region.
func feasRegion(prog *analysis.Program, g *arch.GPU, cfg feas.Config) *feas.Region {
	key := fmt.Sprintf("feas|%+v|%+v", *g, cfg)
	return prog.Memo(key, func() any { return feas.Derive(prog, g, cfg) }).(*feas.Region)
}

// CertifyPrune independently replays a prune certificate: the claimed
// constraint is re-derived from the kernel, the GPU description and a
// fresh reuse analysis — none of the interval machinery that produced
// the certificate — and re-evaluated in arbitrary precision
// (internal/verify, math/big). nil means the pruned point (or region)
// is genuinely infeasible; an error labeled "false-prune" means the
// static analysis pruned a feasible point. cfg must be the Config the
// certificate's region was derived under.
func CertifyPrune(k *AffineKernel, params map[string]int64, g *GPU, cfg feas.Config, cert *PruneCert) error {
	return verify.CertifyPrune(verify.PruneFacts{
		SelectionFacts: verify.SelectionFacts{
			Kernel:                  k,
			Params:                  params,
			GPU:                     g,
			Tiles:                   cert.Tiles,
			SplitFactor:             cfg.SplitFactor,
			WarpFraction:            cfg.WarpFraction,
			Precision:               cfg.Precision,
			ProblemSizeAware:        cfg.ProblemSizeAware,
			EnforceThreadBlockLimit: cfg.EnforceThreadBlockLimit,
		},
		Constraint: cert.Constraint,
		Nest:       cert.Nest,
		Loop:       cert.Loop,
		Region:     cert.Region,
	})
}

// SweepPruneConfig returns the Config FeasibleRegion (and the sweep
// engine's SweepOptions.Prune pre-filter) derives regions under, so
// callers can hand CertifyPrune the matching options.
func SweepPruneConfig(prec Precision) feas.Config { return feas.SweepConfig(prec) }
