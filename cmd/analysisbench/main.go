// Command analysisbench measures what staged compilation buys per
// evaluation: it runs the same tile-space walk twice — once deriving the
// dependence/reuse analysis per point (the pipeline's behaviour before
// the analysis.Program artifact) and once compiling every point from a
// single precomputed artifact — and writes the before/after numbers to a
// JSON file. Both runs are single-threaded so the ratio isolates the
// per-point analysis cost rather than pool effects. The Makefile's
// `analysis-bench` target uses it to keep BENCH_analysis.json current.
//
//	analysisbench                       # gemm 15^3 space
//	analysisbench -points 512 -out BENCH_analysis.json
package main

import (
	"context"
	"flag"
	"fmt"
	"reflect"
	"time"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/codegen"
	"repro/internal/gpusim"
	"repro/internal/ppcg"
)

// report is the JSON schema of BENCH_analysis.json: the shared bench
// envelope (schema version, gomaxprocs, workers, host, git commit)
// plus the staging-specific figures. Both walks are single-threaded,
// so the envelope's workers is always 1.
type report struct {
	Kernel           string  `json:"kernel"`
	GPU              string  `json:"gpu"`
	Points           int     `json:"points"`
	FreshSec         float64 `json:"fresh_sec"`
	StagedSec        float64 `json:"staged_sec"`
	Speedup          float64 `json:"speedup"`
	FreshPerPointUS  float64 `json:"fresh_per_point_us"`
	StagedPerPointUS float64 `json:"staged_per_point_us"`
	Identical        bool    `json:"results_identical"`
	bench.Meta
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel to sweep")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	points := flag.Int("points", 0, "limit the space to the first N points (0 = full 15^d space)")
	outPath := flag.String("out", "BENCH_analysis.json", "output JSON path")
	listen := cli.ListenFlag()
	cli.SetUsage("analysisbench", "measure what staged compilation buys per sweep evaluation",
		"analysisbench                       # gemm 15^3 space",
		"analysisbench -points 512 -out BENCH_analysis.json",
		"analysisbench -listen :8080         # live metrics at /metrics")
	flag.Parse()
	defer cli.Serve(*listen)()

	k, err := affine.Lookup(*kernel)
	if err != nil {
		fatal(err)
	}
	g, ok := arch.ByName(*gpuName)
	if !ok {
		fatal(fmt.Errorf("unknown GPU %q", *gpuName))
	}
	space := ppcg.Space(k, ppcg.PaperSpaceSizes())
	if *points > 0 && *points < len(space) {
		space = space[:*points]
	}
	opts := codegen.Options{UseShared: true, Precision: affine.FP64}
	ctx := context.Background()

	// Before: the pre-staged pipeline — every point re-derives the
	// per-nest dependence/reuse analysis inside the compile.
	t0 := time.Now()
	freshRes := make([]gpusim.Result, 0, len(space))
	for _, tiles := range space {
		mk, err := ppcg.CompileCtx(ctx, k, nil, tiles, g, opts)
		if err != nil {
			freshRes = append(freshRes, gpusim.Result{})
			continue
		}
		freshRes = append(freshRes, gpusim.Simulate(mk, g))
	}
	freshSec := time.Since(t0).Seconds()

	// After: one analysis artifact shared by every compile.
	t1 := time.Now()
	prog := analysis.Analyze(k, nil)
	stagedRes := make([]gpusim.Result, 0, len(space))
	for _, tiles := range space {
		mk, err := ppcg.CompileAnalyzed(ctx, prog, nil, tiles, g, opts)
		if err != nil {
			stagedRes = append(stagedRes, gpusim.Result{})
			continue
		}
		stagedRes = append(stagedRes, gpusim.Simulate(mk, g))
	}
	stagedSec := time.Since(t1).Seconds()

	r := report{
		Kernel:           k.Name,
		GPU:              g.Name,
		Points:           len(space),
		FreshSec:         freshSec,
		StagedSec:        stagedSec,
		Speedup:          freshSec / stagedSec,
		FreshPerPointUS:  1e6 * freshSec / float64(len(space)),
		StagedPerPointUS: 1e6 * stagedSec / float64(len(space)),
		Identical:        reflect.DeepEqual(freshRes, stagedRes),
		Meta:             bench.NewMeta(1),
	}
	if err := bench.WriteJSON(*outPath, r); err != nil {
		fatal(err)
	}
	fmt.Printf("analysisbench: %s on %s, %d points: fresh %.2fs (%.0fus/pt) -> staged %.2fs (%.0fus/pt), %.2fx, identical=%t\n",
		r.Kernel, r.GPU, r.Points, r.FreshSec, r.FreshPerPointUS, r.StagedSec, r.StagedPerPointUS, r.Speedup, r.Identical)
	if !r.Identical {
		fatal(fmt.Errorf("staged results diverge from fresh per-point analysis"))
	}
}

func fatal(err error) { cli.Fatal(err) }
