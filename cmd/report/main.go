// Command report runs the complete evaluation and writes a Markdown
// reproduction report with a pass/deviation verdict per paper artifact —
// the machine-generated counterpart of EXPERIMENTS.md.
//
// Usage:
//
//	report                # to stdout
//	report -out REPORT.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	out := flag.String("out", "", "write the report to a file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := bench.Report(w); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
