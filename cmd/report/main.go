// Command report runs the complete evaluation and writes a Markdown
// reproduction report with a pass/deviation verdict per paper artifact —
// the machine-generated counterpart of EXPERIMENTS.md. It exits non-zero
// when any shape check carries a DEVIATION verdict, so CI can gate on a
// drifted reproduction.
//
// Usage:
//
//	report                # to stdout
//	report -out REPORT.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
)

func main() {
	out := flag.String("out", "", "write the report to a file (default stdout)")
	listen := cli.ListenFlag()
	cli.SetUsage("report", "run the complete evaluation and write a Markdown reproduction report",
		"report                # to stdout",
		"report -out REPORT.md",
		"report -listen :8080  # watch the evaluation at /progress")
	flag.Parse()
	defer cli.Serve(*listen)()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	deviations, err := bench.Report(w)
	if err != nil {
		cli.Fatal(err)
	}
	if deviations > 0 {
		fmt.Fprintf(os.Stderr, "report: %d shape check(s) deviate from the paper\n", deviations)
		os.Exit(1)
	}
}
