// Command symbench measures what the closed-form symbolic evaluator
// buys per sweep evaluation, and proves it safe: it walks the same tile
// space twice — once through the staged compile+simulate pipeline and
// once through the symbolic plan derived from the same analysis
// artifact — then checks point-by-point parity (identical failure set,
// matching energies, same argmin-energy configuration) before writing
// the before/after numbers to a JSON file. Both walks are
// single-threaded so the ratio isolates the per-point evaluation cost.
// The Makefile's `symbolic-bench` target uses it to keep
// BENCH_symbolic.json current, and exits nonzero when the speedup falls
// under the 10x floor or parity breaks.
//
//	symbench                            # gemm 15^3 space
//	symbench -points 512 -out BENCH_symbolic.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"time"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/codegen"
	"repro/internal/gpusim"
	"repro/internal/ppcg"
	"repro/internal/symbolic"
)

// minSpeedup is the per-point win the symbolic backend must deliver
// over compile+simulate for the run to pass.
const minSpeedup = 10.0

// energyTolerance bounds the relative energy disagreement between the
// backends. They share the same model functions, so the honest budget
// is float noise, not modeling error.
const energyTolerance = 1e-9

// report is the JSON schema of BENCH_symbolic.json: the shared bench
// envelope plus the backend-comparison figures. The *_per_point_us
// suffixes put both walks under the regression guard's lower-is-better
// rule.
type report struct {
	Kernel             string  `json:"kernel"`
	GPU                string  `json:"gpu"`
	Points             int     `json:"points"`
	SimulateSec        float64 `json:"simulate_sec"`
	SymbolicSec        float64 `json:"symbolic_sec"`
	Speedup            float64 `json:"speedup"`
	SimulatePerPointUS float64 `json:"simulate_per_point_us"`
	SymbolicPerPointUS float64 `json:"symbolic_per_point_us"`
	// DeriveUS is the one-time plan-derivation cost, amortized over the
	// whole sweep (it is included in SymbolicSec).
	DeriveUS float64 `json:"derive_us"`
	// ArgminAgree reports that both backends pick the same
	// minimum-energy configuration; MaxEnergyRelDiff is the largest
	// per-point relative energy disagreement.
	ArgminAgree      bool    `json:"argmin_agree"`
	MaxEnergyRelDiff float64 `json:"max_energy_rel_diff"`
	ResidualPoints   int     `json:"residual_points"`
	bench.Meta
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel to sweep")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	points := flag.Int("points", 0, "limit the space to the first N points (0 = full 15^d space)")
	outPath := flag.String("out", "BENCH_symbolic.json", "output JSON path")
	listen := cli.ListenFlag()
	cli.SetUsage("symbench", "measure and verify the closed-form symbolic evaluator against compile+simulate",
		"symbench                            # gemm 15^3 space",
		"symbench -points 512 -out BENCH_symbolic.json",
		"symbench -listen :8080              # live metrics at /metrics")
	flag.Parse()
	defer cli.Serve(*listen)()

	k, err := affine.Lookup(*kernel)
	if err != nil {
		fatal(err)
	}
	g, ok := arch.ByName(*gpuName)
	if !ok {
		fatal(fmt.Errorf("unknown GPU %q", *gpuName))
	}
	space := ppcg.Space(k, ppcg.PaperSpaceSizes())
	if *points > 0 && *points < len(space) {
		space = space[:*points]
	}
	opts := codegen.Options{UseShared: true, Precision: affine.FP64}
	ctx := context.Background()
	prog := analysis.Analyze(k, nil)

	// A single walk of a small space finishes in milliseconds — far too
	// short to time stably against scheduler noise — so each side repeats
	// its walk until it has accumulated this much wall-clock and reports
	// its fastest pass (noise only ever inflates a pass, so the minimum
	// is the cleanest estimate of the true cost).
	const minWallSec = 0.25

	// Baseline: the staged compile+simulate pipeline (the sweep engine's
	// pre-symbolic fast path), one artifact shared by every compile.
	simRes := make([]gpusim.Result, len(space))
	simOK := make([]bool, len(space))
	simulateSec := math.Inf(1)
	for t0 := time.Now(); time.Since(t0).Seconds() < minWallSec; {
		p0 := time.Now()
		for i, tiles := range space {
			mk, err := ppcg.CompileAnalyzed(ctx, prog, nil, tiles, g, opts)
			if err != nil {
				simOK[i] = false
				continue
			}
			simRes[i] = gpusim.Simulate(mk, g)
			simOK[i] = true
		}
		simulateSec = math.Min(simulateSec, time.Since(p0).Seconds())
	}

	// Symbolic: derive once per sweep, evaluate the closed form per
	// point. The derivation cost is charged to every pass, as a real
	// sweep would pay it.
	t1 := time.Now()
	plan, err := symbolic.Derive(prog, g, symbolic.Config{
		UseShared: opts.UseShared,
		Precision: opts.Precision,
	}, nil)
	if err != nil {
		fatal(fmt.Errorf("symbolic derivation failed for %s: %w", k.Name, err))
	}
	deriveSec := time.Since(t1).Seconds()
	symRes := make([]gpusim.Result, len(space))
	symOK := make([]bool, len(space))
	residual := 0
	symbolicSec := math.Inf(1)
	for t2 := time.Now(); time.Since(t2).Seconds() < minWallSec; {
		p0 := time.Now()
		residual = 0
		for i, tiles := range space {
			res, err := plan.Eval(tiles)
			if errors.Is(err, symbolic.ErrResidual) {
				residual++
				mk, cerr := ppcg.CompileAnalyzed(ctx, prog, nil, tiles, g, opts)
				if cerr != nil {
					symOK[i] = false
					continue
				}
				symRes[i] = gpusim.Simulate(mk, g)
				symOK[i] = true
				continue
			}
			if err != nil {
				symOK[i] = false
				continue
			}
			symRes[i] = res
			symOK[i] = true
		}
		symbolicSec = math.Min(symbolicSec, time.Since(p0).Seconds())
	}
	// A sweep pays derivation once; charge it to the reported walk.
	symbolicSec += deriveSec

	// Parity: identical failure set, bounded energy disagreement, same
	// argmin-energy pick.
	maxRel := 0.0
	simBest, symBest := -1, -1
	for i := range space {
		if simOK[i] != symOK[i] {
			fatal(fmt.Errorf("point %d: simulate ok=%t but symbolic ok=%t", i, simOK[i], symOK[i]))
		}
		if !simOK[i] {
			continue
		}
		if rel := relDiff(simRes[i].EnergyJ, symRes[i].EnergyJ); rel > maxRel {
			maxRel = rel
		}
		if simBest < 0 || simRes[i].EnergyJ < simRes[simBest].EnergyJ {
			simBest = i
		}
		if symBest < 0 || symRes[i].EnergyJ < symRes[symBest].EnergyJ {
			symBest = i
		}
	}

	r := report{
		Kernel:             k.Name,
		GPU:                g.Name,
		Points:             len(space),
		SimulateSec:        simulateSec,
		SymbolicSec:        symbolicSec,
		Speedup:            simulateSec / symbolicSec,
		SimulatePerPointUS: 1e6 * simulateSec / float64(len(space)),
		SymbolicPerPointUS: 1e6 * symbolicSec / float64(len(space)),
		DeriveUS:           1e6 * deriveSec,
		ArgminAgree:        simBest == symBest,
		MaxEnergyRelDiff:   maxRel,
		ResidualPoints:     residual,
		Meta:               bench.NewMeta(1),
	}
	if err := bench.WriteJSON(*outPath, r); err != nil {
		fatal(err)
	}
	fmt.Printf("symbench: %s on %s, %d points: simulate %.2fs (%.1fus/pt) -> symbolic %.3fs (%.2fus/pt), %.1fx, argmin_agree=%t max_rel=%.2e residual=%d\n",
		r.Kernel, r.GPU, r.Points, r.SimulateSec, r.SimulatePerPointUS, r.SymbolicSec, r.SymbolicPerPointUS,
		r.Speedup, r.ArgminAgree, r.MaxEnergyRelDiff, r.ResidualPoints)
	if !r.ArgminAgree {
		fatal(fmt.Errorf("backends disagree on the minimum-energy configuration (simulate %d vs symbolic %d)", simBest, symBest))
	}
	if r.MaxEnergyRelDiff > energyTolerance {
		fatal(fmt.Errorf("energy disagreement %.3e exceeds the %.0e tolerance", r.MaxEnergyRelDiff, energyTolerance))
	}
	if r.Speedup < minSpeedup {
		fatal(fmt.Errorf("symbolic speedup %.2fx under the %.0fx floor", r.Speedup, minSpeedup))
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func fatal(err error) { cli.Fatal(err) }
