// Command eatssd is the tile-selection daemon: a long-running HTTP
// service exposing the full lint/analyze/solve/compile/simulate
// pipeline as a JSON API, with two-tier artifact caching, request
// coalescing, per-request deadlines, and admission-controlled
// load-shedding (see internal/serve). The live-introspection endpoints
// (/metrics, /progress, /flight, /debug/requests, pprof) are mounted on
// the same listener, and every request is traced end to end into the
// tail-sampled trace store behind /debug/requests.
//
//	eatssd                       # listen on 127.0.0.1:7474
//	eatssd -addr :8080 -warm     # pre-analyze the catalog on boot
//	curl -s localhost:7474/v1/solve -d '{"kernel":"gemm"}'
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7474", "listen address (e.g. :8080 or 127.0.0.1:0)")
	inflight := flag.Int("inflight", 0, "max concurrently executing heavy operations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max heavy operations queued beyond -inflight before shedding with 429 (0 = 4x inflight)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline when the request carries no timeout_ms (0 = 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "upper clamp on client-requested deadlines (0 = 2m)")
	programs := flag.Int("programs", 0, "program (analysis artifact) cache entries (0 = 256)")
	selections := flag.Int("selections", 0, "selection/best cache entries (0 = 4096)")
	warm := flag.Bool("warm", false, "pre-analyze the built-in kernel catalog on boot")
	traceCap := flag.Int("trace-capacity", 0, "finished request traces retained for /debug/requests (0 = 256)")
	traceSample := flag.Int("trace-sample", 0, "keep 1 in N healthy fast request traces (0 = 16; errors, sheds, timeouts and the slow tail are always kept)")
	noTraces := flag.Bool("no-request-traces", false, "disable per-request span collection and the /debug/requests store (trace IDs, metrics and access log remain)")
	verbose := flag.Bool("v", false, "debug logging")
	cli.SetUsage("eatssd", "serve tile selection over HTTP with caching, coalescing and load-shedding",
		"eatssd                       # listen on 127.0.0.1:7474",
		"eatssd -addr :8080 -warm     # pre-analyze the catalog on boot",
		`curl -s localhost:7474/v1/solve -d '{"kernel":"gemm"}'`)
	flag.Parse()
	if *verbose {
		cli.Verbose()
	}

	// Metrics and the flight ring, but not global span capture: a
	// daemon's span log would grow without bound. Per-request span trees
	// are bounded per trace and tail-sampled into the /debug/requests
	// store instead.
	obs.EnableMetrics()
	flight.Default.Enable()
	trace.Default.Configure(*traceCap, *traceSample)

	s := serve.New(serve.Config{
		MaxInflight:        *inflight,
		MaxQueue:           *queue,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		ProgramCacheSize:   *programs,
		SelectionCacheSize: *selections,
		AccessLog:          cli.Logger,
		DisableTracing:     *noTraces,
	})
	if *warm {
		n := s.Warm(context.Background())
		cli.Logger.Info("catalog warmed", "tool", "eatssd", "programs", n)
	}

	srv, err := s.Start(*addr)
	if err != nil {
		cli.Fatal(err)
	}
	cli.Logger.Info("eatssd listening", "addr", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	cli.Logger.Info("shutting down", "signal", got.String())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		cli.Logger.Warn("graceful shutdown incomplete, closing", "err", err)
		srv.Close()
	}
}
