// Command sweepbench records the sweep engine's throughput: it runs the
// same tile-space sweep sequentially (j=1, the engine's behaviour before
// parallelization) and on the worker pool (j=N), and writes the
// before/after numbers to a JSON file. The Makefile's `sweep-bench`
// target uses it to keep BENCH_sweep.json current.
//
//	sweepbench                       # gemm 15^3 space, j=GOMAXPROCS
//	sweepbench -points 512 -j 8 -out BENCH_sweep.json
package main

import (
	"context"
	"flag"
	"fmt"
	"reflect"
	"runtime"
	"time"

	eatss "repro"

	"repro/internal/bench"
	"repro/internal/cli"
)

// report is the JSON schema of BENCH_sweep.json: the shared bench
// envelope (schema version, gomaxprocs, workers, host, git commit)
// plus the sweep-specific figures.
type report struct {
	Kernel        string  `json:"kernel"`
	GPU           string  `json:"gpu"`
	Points        int     `json:"points"`
	SeqSec        float64 `json:"seq_sec"`
	ParSec        float64 `json:"par_sec"`
	Speedup       float64 `json:"speedup"`
	SeqPointsPerS float64 `json:"seq_points_per_sec"`
	ParPointsPerS float64 `json:"par_points_per_sec"`
	Identical     bool    `json:"results_identical"`
	bench.Meta
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel to sweep")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	points := flag.Int("points", 0, "limit the space to the first N points (0 = full 15^d space)")
	j := flag.Int("j", 0, "parallel workers for the 'after' run (0 = GOMAXPROCS)")
	outPath := flag.String("out", "BENCH_sweep.json", "output JSON path")
	listen := cli.ListenFlag()
	cli.SetUsage("sweepbench", "measure the sweep engine's sequential vs parallel throughput",
		"sweepbench                       # gemm 15^3 space, j=GOMAXPROCS",
		"sweepbench -points 512 -j 8 -out BENCH_sweep.json",
		"sweepbench -listen :8080         # watch both runs at /progress")
	flag.Parse()
	defer cli.Serve(*listen)()

	k, err := eatss.Kernel(*kernel)
	if err != nil {
		fatal(err)
	}
	g, err := eatss.GPUByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	space := eatss.PaperSpace(k)
	if *points > 0 && *points < len(space) {
		space = space[:*points]
	}
	workers := *j
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Fresh per-run caches so neither run is served memoized results —
	// this measures evaluation throughput, not cache hits.
	ctx := context.Background()
	t0 := time.Now()
	seqPts, seqStats := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
		eatss.SweepOptions{Workers: 1, Cache: eatss.NewEvalCache()})
	seqSec := time.Since(t0).Seconds()

	t1 := time.Now()
	parPts, parStats := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
		eatss.SweepOptions{Workers: workers, Cache: eatss.NewEvalCache()})
	parSec := time.Since(t1).Seconds()

	identical := seqStats == parStats && reflect.DeepEqual(seqPts, parPts)

	r := report{
		Kernel:        k.Name,
		GPU:           g.Name,
		Points:        len(space),
		SeqSec:        seqSec,
		ParSec:        parSec,
		Speedup:       seqSec / parSec,
		SeqPointsPerS: float64(len(space)) / seqSec,
		ParPointsPerS: float64(len(space)) / parSec,
		Identical:     identical,
		Meta:          bench.NewMeta(workers),
	}
	if err := bench.WriteJSON(*outPath, r); err != nil {
		fatal(err)
	}
	fmt.Printf("sweepbench: %s on %s, %d points: j=1 %.2fs (%.0f pts/s) -> j=%d %.2fs (%.0f pts/s), %.2fx, identical=%t\n",
		r.Kernel, r.GPU, r.Points, r.SeqSec, r.SeqPointsPerS, r.Workers, r.ParSec, r.ParPointsPerS, r.Speedup, r.Identical)
}

func fatal(err error) { cli.Fatal(err) }
