// Command benchguard is the benchmark regression gate: it reads the
// repo's BENCH_*.json reports, compares each against the median of its
// recent comparable history in BENCH_history.jsonl (the last 8 runs
// with the same file, kernel, GPU, point count, GOMAXPROCS and host —
// a sliding window, so the baseline tracks machine drift), appends the
// new runs to the history, and exits non-zero when a guarded metric —
// per-point time, speedup, points/sec — regressed beyond the noise
// threshold. The
// Makefile's `bench-guard` target runs it after the bench tools, so
// `make check` (and CI) fails when a hot path gets slower.
//
//	benchguard                                   # guard ./BENCH_*.json
//	benchguard -tol 0.25 BENCH_sweep.json        # custom threshold/files
//	benchguard -check-only                       # compare, don't append
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/cli"
)

func main() {
	historyPath := flag.String("history", "BENCH_history.jsonl", "trajectory file (JSONL, append-only)")
	tol := flag.Float64("tol", 0.15, "relative noise threshold: a guarded metric this much worse than its baseline fails")
	checkOnly := flag.Bool("check-only", false, "compare against history without appending the new runs")
	cli.SetUsage("benchguard", "gate benchmark regressions against the BENCH_history.jsonl trajectory",
		"benchguard                                   # guard ./BENCH_*.json",
		"benchguard -tol 0.25 BENCH_sweep.json        # custom threshold/files",
		"benchguard -check-only                       # compare, don't append")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fatal(err)
		}
	}
	if len(files) == 0 {
		fmt.Println("benchguard: no BENCH_*.json reports found, nothing to guard")
		return
	}

	history, err := bench.ReadHistory(*historyPath)
	if err != nil {
		fatal(err)
	}

	var failures []bench.Regression
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		e, err := bench.EntryFromReport(file, raw)
		if err != nil {
			fatal(err)
		}
		regs := bench.Guard(history, e, *tol)
		failures = append(failures, regs...)
		baseline := "no comparable history (trajectory starts here)"
		if n := comparableRuns(history, e); n > 0 {
			baseline = fmt.Sprintf("baseline over %d comparable run(s)", n)
		}
		fmt.Printf("benchguard: %s: %d guarded metric(s), %s, %d regression(s)\n",
			e.File, guardedCount(e), baseline, len(regs))
		for _, r := range regs {
			fmt.Printf("  REGRESSION %s\n", r)
		}
		if !*checkOnly {
			if err := bench.AppendHistory(*historyPath, e); err != nil {
				fatal(err)
			}
		}
	}
	if len(failures) > 0 {
		fmt.Printf("benchguard: FAIL — %d regression(s) beyond %.0f%% tolerance\n", len(failures), 100**tol)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func comparableRuns(history []bench.HistoryEntry, e bench.HistoryEntry) int {
	n := 0
	for _, h := range history {
		if h.File == e.File && h.Kernel == e.Kernel && h.GPU == e.GPU &&
			h.Points == e.Points && h.GOMAXPROCS == e.GOMAXPROCS && h.Host == e.Host {
			n++
		}
	}
	return n
}

func guardedCount(e bench.HistoryEntry) int {
	n := 0
	for name := range e.Metrics {
		if bench.GuardedMetric(name) {
			n++
		}
	}
	return n
}

func fatal(err error) { cli.Fatal(err) }
