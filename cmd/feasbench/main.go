// Command feasbench is the static-feasibility soundness gate: it proves
// the sweep pre-filter (internal/feas) prunes only provably infeasible
// points, measures what the pre-filter costs and saves, and writes the
// numbers to a JSON file.
//
// Four checks must all pass, or the run exits nonzero:
//
//  1. Parity — the pruned sweep (SweepOptions.Prune) must return the
//     same surviving points, bit for bit, as the full sweep filtered
//     through the same region predicate, and both must agree on the
//     argmax-PPW configuration.
//  2. Certification — every prune certificate the pre-filter emits must
//     replay under the independent math/big certifier
//     (verify.CertifyPrune), which re-derives the claimed constraint
//     from the kernel and GPU description without the interval
//     machinery that produced the certificate.
//  3. UNSAT — sampled certificates are re-decided by the SMT solver
//     (Region.UnsatSMT): pinning the pruned point in the region's
//     constraint system must be unsatisfiable.
//  4. Prune rate — the paper's gemm 15^3 space on GA100 must prune at
//     least 30% of its points (the register bound alone removes ~39%),
//     so the pre-filter keeps paying for itself.
//
// A reduced-space pass over the whole kernel catalog on both reference
// GPUs then re-runs check 2 on every certificate those spaces produce.
// The Makefile's `feas-bench` target keeps BENCH_prune.json current.
//
//	feasbench                           # gemm 15^3 space on GA100
//	feasbench -out BENCH_prune.json
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"reflect"
	"time"

	eatss "repro"
	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/feas"
	"repro/internal/ppcg"
)

// minPruneRate is the fraction of the default gemm space the pre-filter
// must remove for the run to pass.
const minPruneRate = 0.30

// catalogSizes is the reduced per-dimension candidate set for the
// catalog-wide certification pass (3^d points per kernel).
var catalogSizes = []int64{8, 32, 128}

// report is the JSON schema of BENCH_prune.json. check_per_point_us
// carries the regression guard's lower-is-better suffix; prune_rate is
// guarded as higher-is-better.
type report struct {
	Kernel          string  `json:"kernel"`
	GPU             string  `json:"gpu"`
	Points          int     `json:"points"`
	Pruned          int     `json:"pruned"`
	PruneRate       float64 `json:"prune_rate"`
	CheckPerPointUS float64 `json:"check_per_point_us"`
	// Full vs pruned wall-clock of the same sweep (fresh caches each);
	// the ratio is reported but not guarded — it rides on scheduler
	// noise, unlike the per-point pre-filter cost above.
	FullSweepSec   float64 `json:"full_sweep_sec"`
	PrunedSweepSec float64 `json:"pruned_sweep_sec"`
	SweepSpeedup   float64 `json:"sweep_speedup"`
	// Certified counts certificates replayed by the math/big certifier;
	// SMTConfirmed counts those also re-decided UNSAT by the solver.
	Certified    int  `json:"certified"`
	SMTConfirmed int  `json:"smt_confirmed"`
	ArgmaxAgree  bool `json:"argmax_agree"`
	// Catalog pass: every kernel on both reference GPUs over the
	// reduced space, every certificate certified.
	CatalogKernels int `json:"catalog_kernels"`
	CatalogPoints  int `json:"catalog_points"`
	CatalogPruned  int `json:"catalog_pruned"`
	bench.Meta
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel to sweep")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	points := flag.Int("points", 0, "limit the space to the first N points (0 = full 15^d space)")
	smtSample := flag.Int("smt-sample", 8, "re-decide every Nth certificate with the SMT solver (1 = all)")
	outPath := flag.String("out", "BENCH_prune.json", "output JSON path")
	listen := cli.ListenFlag()
	cli.SetUsage("feasbench", "prove the static tile-space pre-filter sound and measure what it saves",
		"feasbench                           # gemm 15^3 space on GA100",
		"feasbench -out BENCH_prune.json",
		"feasbench -smt-sample 1             # solver-confirm every certificate")
	flag.Parse()
	defer cli.Serve(*listen)()
	if *smtSample < 1 {
		*smtSample = 1
	}

	k, err := affine.Lookup(*kernel)
	if err != nil {
		fatal(err)
	}
	g, ok := arch.ByName(*gpuName)
	if !ok {
		fatal(fmt.Errorf("unknown GPU %q", *gpuName))
	}
	space := ppcg.Space(k, ppcg.PaperSpaceSizes())
	if *points > 0 && *points < len(space) {
		space = space[:*points]
	}
	prog := analysis.Analyze(k, nil)
	cfg := feas.SweepConfig(affine.FP64)
	region := feas.Derive(prog, g, cfg)

	// Pre-filter cost: walk the space through Region.Check alone,
	// fastest of repeated passes (noise only inflates a pass).
	const minWallSec = 0.1
	checkSec := math.Inf(1)
	prunedN := 0
	for t0 := time.Now(); time.Since(t0).Seconds() < minWallSec; {
		p0 := time.Now()
		prunedN = 0
		for _, tiles := range space {
			if region.Check(tiles) != nil {
				prunedN++
			}
		}
		checkSec = math.Min(checkSec, time.Since(p0).Seconds())
	}
	rate := float64(prunedN) / float64(len(space))

	// Certification: every certificate replays in math/big; every
	// smt-sample'th is re-decided UNSAT by the solver.
	certified, smtConfirmed := 0, 0
	for i, tiles := range space {
		cert := region.Check(tiles)
		if cert == nil {
			continue
		}
		if cerr := eatss.CertifyPrune(k, k.Params, g, cfg, cert); cerr != nil {
			fatal(fmt.Errorf("point %d %v: certificate failed independent replay: %w", i, tiles, cerr))
		}
		certified++
		if (certified-1)%*smtSample == 0 {
			if !region.UnsatSMT(tiles) {
				fatal(fmt.Errorf("point %d %v: pruned as %q but the SMT solver finds it satisfiable", i, tiles, cert.Constraint))
			}
			smtConfirmed++
		}
	}

	// Parity: the pruned sweep must equal the full sweep filtered by the
	// same predicate — surviving set and per-point results bit for bit.
	ctx := context.Background()
	rc := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	t1 := time.Now()
	full, _ := eatss.ExploreSpaceOpt(ctx, k, g, space, rc, eatss.SweepOptions{Cache: eatss.NewEvalCache()})
	fullSec := time.Since(t1).Seconds()
	t2 := time.Now()
	pruned, prunedStats := eatss.ExploreSpaceOpt(ctx, k, g, space, rc,
		eatss.SweepOptions{Prune: true, Cache: eatss.NewEvalCache()})
	prunedSec := time.Since(t2).Seconds()

	if prunedStats.Pruned != prunedN {
		fatal(fmt.Errorf("sweep pruned %d points but Region.Check prunes %d", prunedStats.Pruned, prunedN))
	}
	var want []eatss.SpacePoint
	for _, p := range full {
		if region.Check(p.Tiles) == nil {
			want = append(want, p)
		}
	}
	if len(pruned) != len(want) {
		fatal(fmt.Errorf("pruned sweep returned %d points, filtered full sweep has %d", len(pruned), len(want)))
	}
	for i := range want {
		if !reflect.DeepEqual(pruned[i].Tiles, want[i].Tiles) || !reflect.DeepEqual(pruned[i].Result, want[i].Result) {
			fatal(fmt.Errorf("pruned sweep diverges from filtered full sweep at surviving point %d (%v vs %v)",
				i, pruned[i].Tiles, want[i].Tiles))
		}
	}
	argmaxAgree := len(want) == 0
	if len(want) > 0 {
		bi, bj := argmaxPPW(pruned), argmaxPPW(want)
		argmaxAgree = reflect.DeepEqual(pruned[bi].Tiles, want[bj].Tiles)
		if !argmaxAgree {
			fatal(fmt.Errorf("argmax-PPW disagrees: pruned sweep %v, filtered full sweep %v", pruned[bi].Tiles, want[bj].Tiles))
		}
	}

	// The solver's own selections must never be pruned: each SelectBest
	// candidate satisfies the sweep region by construction.
	if best, berr := eatss.SelectBest(k, g, eatss.FP64, nil); berr == nil {
		for _, c := range best.Candidates {
			if cert := region.Check(c.Selection.Tiles); cert != nil {
				fatal(fmt.Errorf("solver selection %v (split %.2f) pruned: %s", c.Selection.Tiles, c.SharedFrac, cert))
			}
		}
	}

	// Catalog pass: reduced space, both reference GPUs, every
	// certificate certified.
	catKernels, catPoints, catPruned := 0, 0, 0
	for _, name := range affine.Catalog() {
		ck := affine.MustLookup(name)
		cprog := analysis.Analyze(ck, nil)
		cspace := ppcg.Space(ck, catalogSizes)
		catKernels++
		for _, cg := range []*arch.GPU{arch.GA100(), arch.Xavier()} {
			cregion := feas.Derive(cprog, cg, cfg)
			for i, tiles := range cspace {
				catPoints++
				cert := cregion.Check(tiles)
				if cert == nil {
					continue
				}
				catPruned++
				if cerr := eatss.CertifyPrune(ck, ck.Params, cg, cfg, cert); cerr != nil {
					fatal(fmt.Errorf("%s on %s point %d %v: certificate failed independent replay: %w",
						name, cg.Name, i, tiles, cerr))
				}
			}
		}
	}

	r := report{
		Kernel:          k.Name,
		GPU:             g.Name,
		Points:          len(space),
		Pruned:          prunedN,
		PruneRate:       rate,
		CheckPerPointUS: 1e6 * checkSec / float64(len(space)),
		FullSweepSec:    fullSec,
		PrunedSweepSec:  prunedSec,
		SweepSpeedup:    fullSec / prunedSec,
		Certified:       certified,
		SMTConfirmed:    smtConfirmed,
		ArgmaxAgree:     argmaxAgree,
		CatalogKernels:  catKernels,
		CatalogPoints:   catPoints,
		CatalogPruned:   catPruned,
		Meta:            bench.NewMeta(1),
	}
	if err := bench.WriteJSON(*outPath, r); err != nil {
		fatal(err)
	}
	fmt.Printf("feasbench: %s on %s, %d points: pruned %d (%.1f%%, %.3fus/pt), certified %d, smt-confirmed %d, sweep %.2fs -> %.2fs (%.2fx), catalog %d kernels / %d points / %d pruned\n",
		r.Kernel, r.GPU, r.Points, r.Pruned, 100*r.PruneRate, r.CheckPerPointUS,
		r.Certified, r.SMTConfirmed, r.FullSweepSec, r.PrunedSweepSec, r.SweepSpeedup,
		r.CatalogKernels, r.CatalogPoints, r.CatalogPruned)
	if *points == 0 && *kernel == "gemm" && rate < minPruneRate {
		fatal(fmt.Errorf("prune rate %.1f%% under the %.0f%% floor", 100*rate, 100*minPruneRate))
	}
}

// argmaxPPW returns the index of the highest-PPW point.
func argmaxPPW(pts []eatss.SpacePoint) int {
	best := 0
	for i := range pts {
		if pts[i].Result.PPW > pts[best].Result.PPW {
			best = i
		}
	}
	return best
}

func fatal(err error) { cli.Fatal(err) }
