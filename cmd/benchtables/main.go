// Command benchtables regenerates every table and figure of the paper's
// evaluation section on the simulated GA100 and Xavier testbeds.
//
// Usage:
//
//	benchtables                  # everything
//	benchtables -only fig7       # one experiment
//	benchtables -gpu xavier      # restrict GPU where applicable
//	benchtables -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cli"
)

type experiment struct {
	id   string
	desc string
	run  func(g *arch.GPU) string
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "gemm power vs problem size", func(g *arch.GPU) string {
			return bench.Fig1(g, nil).Render()
		}},
		{"fig2", "2mm/gemm exhaustive tile space (3,375 variants)", func(g *arch.GPU) string {
			return bench.Fig2("2mm", g).Render() + bench.Fig2("gemm", g).Render()
		}},
		{"fig3", "2mm space on both GPUs", func(g *arch.GPU) string {
			return bench.Fig3().Render()
		}},
		{"fig7", "Polybench evaluation (Med/Def/Best PPCG vs EATSS)", func(g *arch.GPU) string {
			return bench.Fig7(g, nil).Render()
		}},
		{"fig8", "shared-memory split study", func(g *arch.GPU) string {
			return bench.Fig8(g, nil, nil).Render()
		}},
		{"fig9", "L2 sectors vs power correlation", func(g *arch.GPU) string {
			return bench.Fig9(g, nil).Render()
		}},
		{"fig10", "non-Polybench kernels with warp fractions", func(g *arch.GPU) string {
			return bench.Fig10(g).Render()
		}},
		{"fig11", "non-Polybench space histograms (Freedman-Diaconis)", func(g *arch.GPU) string {
			return bench.Fig11(g).Render()
		}},
		{"fig12", "input-size sensitivity (Polybench)", func(g *arch.GPU) string {
			return bench.Fig12(g, nil, nil).Render()
		}},
		{"fig13", "input-size sensitivity (non-Polybench)", func(g *arch.GPU) string {
			return bench.Fig13(g, nil).Render()
		}},
		{"table4", "cuBLAS / cuDNN comparison", func(g *arch.GPU) string {
			return bench.Table4().Render()
		}},
		{"fig14", "EATSS vs ytopt autotuner", func(g *arch.GPU) string {
			return bench.Fig14(g, nil).Render()
		}},
		{"secvg", "solver overhead by loop depth", func(g *arch.GPU) string {
			return bench.SecVG(g).Render()
		}},
		{"timetile", "extension: overlapped time tiling on stencils", func(g *arch.GPU) string {
			return bench.TimeTilingStudy(g, nil, nil).Render()
		}},
		{"regtile", "extension: register micro-tiles on BLAS3", func(g *arch.GPU) string {
			return bench.RegTileStudy(g, nil, nil).Render()
		}},
		{"precision", "Sec. IV-I precision adaptation study", func(g *arch.GPU) string {
			return bench.PrecisionStudy(g, nil).Render()
		}},
		{"ablation", "design-choice ablations", func(g *arch.GPU) string {
			return bench.AblateObjective(g, nil).Render() +
				bench.AblateMemorySplit(g, nil).Render() +
				bench.AblateWarpFraction(g).Render() +
				bench.AblateFPFactor(g).Render()
		}},
	}
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	gpuName := flag.String("gpu", "ga100", "GPU for single-GPU experiments (ga100|xavier)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	j := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	listen := cli.ListenFlag()
	cli.SetUsage("benchtables", "regenerate the tables and figures of the paper's evaluation section",
		"benchtables                  # everything",
		"benchtables -only fig7       # one experiment",
		"benchtables -gpu xavier      # restrict GPU where applicable",
		"benchtables -list            # list experiment ids",
		"benchtables -listen :8080    # watch long sweeps at /progress")
	flag.Parse()
	bench.Workers = *j
	defer cli.Serve(*listen)()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}
	g, ok := arch.ByName(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchtables: unknown GPU %q (use ga100 or xavier)\n", *gpuName)
		os.Exit(2)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("### %s: %s\n\n", e.id, e.desc)
		fmt.Println(e.run(g))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtables: no experiment matched %q (use -list)\n", *only)
		os.Exit(2)
	}
}
