// Command eatss runs the Energy-Aware Tile Size Selection pipeline on one
// kernel: it builds the non-linear integer model, solves it, optionally
// prints the formulation and the generated CUDA-style code, and simulates
// the chosen configuration against the PPCG default.
//
// Examples:
//
//	eatss -kernel gemm                       # paper's walkthrough (GA100)
//	eatss -kernel heat-3d -warpfrac 0.125    # high-dimensional kernel
//	eatss -kernel 2mm -gpu xavier -best      # full 3-split protocol
//	eatss -kernel gemm -dump-model -cuda     # show formulation and code
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	eatss "repro"

	"repro/internal/cli"
	"repro/internal/obs"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name (see -list)")
	file := flag.String("file", "", "load the kernel from a DSL file instead of the catalog")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	gpuFile := flag.String("gpu-file", "", "load the GPU description from a JSON file")
	split := flag.Float64("split", 0.5, "shared-memory split factor in [0, 1]")
	warpFrac := flag.Float64("warpfrac", 0.5, "warp alignment fraction (1, 0.5, 0.25, 0.125)")
	fp32 := flag.Bool("fp32", false, "use single precision (default FP64)")
	best := flag.Bool("best", false, "run the full protocol: 3 shared splits, keep best PPW")
	dumpModel := flag.Bool("dump-model", false, "print the generated formulation")
	explain := flag.Bool("explain", false, "print per-constraint usage and binding constraints")
	showPower := flag.Bool("power", false, "print the average power breakdown")
	profileFlag := flag.Bool("profile", false, "print the per-level/per-array energy attribution and the diff vs the PPCG default")
	profileOut := flag.String("profile-out", "", "write the attribution profile as JSON to this file")
	surfaceOut := flag.String("surface", "", "sweep the tile space and write the energy surface to this file (.csv = long-format points, else JSON with heatmap slices)")
	surfaceSizes := flag.String("surface-sizes", "4,8,16,32,64", "comma-separated tile sizes enumerated per dimension by -surface")
	cuda := flag.Bool("cuda", false, "print the generated CUDA-style code")
	list := flag.Bool("list", false, "list available kernels")
	lintFlag := flag.Bool("lint", false, "lint the kernel and exit (nonzero on error-severity findings)")
	verifyFlag := flag.String("verify", "off", "independently certify results: off | sample | all")
	timeTile := flag.Int64("timetile", 0, "fuse this many time steps per launch on repeated stencil nests (>1 enables)")
	regTile := flag.Int64("regtile", 0, "register micro-tile factor: each thread computes an r x r block (>1 enables)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file of the pipeline (load in chrome://tracing or ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot (solver nodes, prunes, simulated traffic) after the run")
	summary := flag.Bool("summary", false, "print the span tree summary after the run")
	verbose := flag.Bool("v", false, "debug-level diagnostics on stderr")
	listen := cli.ListenFlag()
	cli.SetUsage("eatss", "run the Energy-Aware Tile Size Selection pipeline on one kernel",
		"eatss -kernel gemm                       # paper's walkthrough (GA100)",
		"eatss -kernel heat-3d -warpfrac 0.125    # high-dimensional kernel",
		"eatss -kernel 2mm -gpu xavier -best      # full 3-split protocol",
		"eatss -kernel gemm -dump-model -cuda     # show formulation and code",
		"eatss -kernel gemm -listen 127.0.0.1:8080  # watch live at /progress")
	flag.Parse()
	if *verbose {
		cli.Verbose()
	}
	defer cli.Serve(*listen)()

	ctx := context.Background()
	var rootSpan *obs.Span
	if *tracePath != "" || *metrics || *summary {
		obs.Enable()
		ctx, rootSpan = obs.Start(ctx, "eatss.pipeline")
		defer func() {
			rootSpan.End()
			if *summary {
				fmt.Println("\n--- span tree ---")
				fmt.Print(obs.TreeSummary())
			}
			if *metrics {
				fmt.Println("\n--- metrics ---")
				fmt.Print(obs.MetricsSummary())
			}
			if *tracePath != "" {
				f, err := os.Create(*tracePath)
				if err != nil {
					cli.Logger.Error(err.Error(), "tool", "eatss")
					return
				}
				defer f.Close()
				if err := obs.WriteChromeTrace(f); err != nil {
					cli.Logger.Error(err.Error(), "tool", "eatss")
					return
				}
				fmt.Printf("\nwrote Chrome trace (%d spans) to %s\n", len(obs.Spans()), *tracePath)
			}
		}()
	}

	if *list {
		for _, n := range eatss.Kernels() {
			fmt.Println(n)
		}
		return
	}

	var k *eatss.AffineKernel
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		k, err = eatss.ParseKernelNamed(string(src), *file)
		if err != nil {
			fatal(err)
		}
		for _, plan := range eatss.Schedule(k) {
			if plan.Changed {
				fmt.Printf("scheduled nest %s: loop order %v\n", plan.Nest, plan.Order)
			}
		}
	} else {
		var err error
		k, err = eatss.Kernel(*kernel)
		if err != nil {
			fatal(err)
		}
	}
	if *lintFlag {
		diags := eatss.Lint(k, nil)
		if len(diags) == 0 {
			fmt.Printf("%s: no findings\n", k.Name)
			return
		}
		fmt.Print(eatss.RenderDiags(diags))
		if eatss.LintHasErrors(diags) {
			os.Exit(1)
		}
		return
	}
	vmode, err := eatss.ParseVerifyMode(*verifyFlag)
	if err != nil {
		fatal(err)
	}
	var g *eatss.GPU
	if *gpuFile != "" {
		var err error
		g, err = eatss.LoadGPU(*gpuFile)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		g, err = eatss.GPUByName(*gpuName)
		if err != nil {
			fatal(err)
		}
	}
	prec := eatss.FP64
	if *fp32 {
		prec = eatss.FP32
	}
	params := k.Params
	if g.Name == "Xavier" && *file == "" {
		if std, err := eatss.StandardParams(*kernel); err == nil {
			params = std
		}
	}

	// Stage the analysis once; the solve, compile, simulate and explain
	// steps below all reuse it.
	prog, err := eatss.AnalyzeCtx(ctx, k, params)
	if err != nil {
		fatal(err)
	}

	if *best {
		b, err := prog.SelectBestCtx(ctx, g, prec)
		if err != nil {
			fatal(err)
		}
		// The protocol threads its own Options per split, so certify the
		// surviving candidates after the fact.
		for _, c := range b.Candidates {
			if !vmode.ShouldVerify(k.Name + "|" + g.Name + "|" + fmt.Sprint(c.SharedFrac)) {
				continue
			}
			if err := eatss.Certify(prog.Kernel(), g, c.Selection); err != nil {
				fatal(err)
			}
		}
		if vmode != eatss.VerifyOff {
			fmt.Printf("certified %d candidate selection(s)\n", len(b.Candidates))
		}
		fmt.Printf("EATSS protocol for %s on %s (%d candidates, %d solver calls)\n",
			k.Name, g.Name, len(b.Candidates), b.SolverCalls)
		for _, c := range b.Candidates {
			marker := " "
			if c.Selection == b.Chosen.Selection {
				marker = "*"
			}
			fmt.Printf("%s split=%.2f tiles=%v  %.1f GFLOP/s  %.1f W  %.3f J  PPW %.2f\n",
				marker, c.SharedFrac, c.Selection.Tiles,
				c.Result.GFLOPS, c.Result.AvgPowerW, c.Result.EnergyJ, c.Result.PPW)
		}
		compareDefault(ctx, prog, g, params, b.Chosen.Result)
		emitProfile(ctx, prog, g, params, b.Chosen.Selection, b.Chosen.Result, *profileFlag, *profileOut)
		emitSurface(ctx, prog, g, params, prec, *surfaceSizes, *surfaceOut)
		return
	}

	opts := eatss.Options{
		SplitFactor:      *split,
		WarpFraction:     *warpFrac,
		Precision:        prec,
		ProblemSizeAware: true,
		Verify:           vmode,
	}
	sel, err := prog.SelectTilesCtx(ctx, g, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(sel.String())
	if *dumpModel {
		fmt.Println("\n--- formulation ---")
		fmt.Print(sel.Model)
	}
	if *explain {
		_, rendered := prog.Explain(g, sel)
		fmt.Println("\n--- constraint usage ---")
		fmt.Print(rendered)
	}

	cfg := eatss.RunConfig{
		Params: params, UseShared: *split > 0, Precision: prec,
		TimeTileFuse: *timeTile, RegTile: *regTile, Verify: vmode,
	}
	if *cuda || *summary {
		mk, err := prog.CompileCtx(ctx, g, sel.Tiles, cfg)
		if err != nil {
			fatal(err)
		}
		if *cuda {
			fmt.Println("\n--- generated CUDA ---")
			fmt.Print(mk.CUDASource())
		}
		if *summary && (cfg.TimeTileFuse > 1 || cfg.RegTile > 1) {
			fmt.Printf("tiling fallbacks: time-tile %d nest(s), register-tile %d nest(s)\n",
				mk.TimeTileFallbacks, mk.RegTileFallbacks)
		}
	}

	res, err := prog.RunCtx(ctx, g, sel.Tiles, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsimulated: %.1f GFLOP/s  %.1f W  %.3f J  PPW %.2f  (%.2f ms)\n",
		res.GFLOPS, res.AvgPowerW, res.EnergyJ, res.PPW, res.TimeSec*1e3)
	if *showPower {
		b := res.Power
		fmt.Printf("power breakdown: const %.1fW  static %.1fW  SM %.1fW  L2 %.1fW  DRAM %.1fW  shared %.1fW  liveness %.1fW\n",
			b.Constant, b.Static, b.DynSM, b.DynL2, b.DynDRAM, b.DynShared, b.DynLive)
	}
	compareDefault(ctx, prog, g, params, res)
	emitProfile(ctx, prog, g, params, sel, res, *profileFlag, *profileOut)
	emitSurface(ctx, prog, g, params, prec, *surfaceSizes, *surfaceOut)
}

func compareDefault(ctx context.Context, prog *eatss.Program, g *eatss.GPU, params map[string]int64, res eatss.Result) {
	def, err := prog.RunCtx(ctx, g, prog.DefaultTiles(), eatss.RunConfig{
		Params: params, UseShared: true, Precision: eatss.FP64,
	})
	if err != nil {
		return
	}
	fmt.Printf("vs default PPCG (32^d): %.1f GFLOP/s  %.1f W  PPW %.2f  =>  %.2fx perf, %.2fx PPW, %.2fx energy\n",
		def.GFLOPS, def.AvgPowerW, def.PPW,
		res.GFLOPS/def.GFLOPS, res.PPW/def.PPW, res.EnergyJ/def.EnergyJ)
}

// emitProfile computes the energy attribution of the chosen
// configuration and, as requested, prints the report (with the energy
// explanation and the diff against the PPCG default) and/or writes the
// profile JSON. The profile is also published to the live server's
// /profile endpoint when -listen is active.
func emitProfile(ctx context.Context, prog *eatss.Program, g *eatss.GPU, params map[string]int64, sel *eatss.Selection, res eatss.Result, show bool, outPath string) {
	if !show && outPath == "" {
		return
	}
	p, err := eatss.ProfileOf(&res, sel.Tiles)
	if err != nil {
		fatal(err)
	}
	eatss.PublishProfile(p)
	if show {
		fmt.Println("\n--- energy attribution ---")
		fmt.Print(p.Render())
		slacks, _ := prog.Explain(g, sel)
		fmt.Println()
		fmt.Print(eatss.ExplainEnergy(sel, slacks, p))
		defTiles := prog.DefaultTiles()
		def, err := prog.RunCtx(ctx, g, defTiles, eatss.RunConfig{
			Params: params, UseShared: true, Precision: eatss.FP64,
		})
		if err == nil {
			if pd, err := eatss.ProfileOf(&def, defTiles); err == nil {
				pd.Label = "ppcg-default"
				fmt.Println("\n--- profile diff (A=default, B=selected) ---")
				fmt.Print(eatss.ProfileDiff(pd, p).Render())
			}
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote attribution profile to %s\n", outPath)
	}
}

// emitSurface sweeps the kernel's tile space over the -surface-sizes
// grid and writes the energy surface: long-format CSV when the path
// ends in .csv, JSON with heatmap slices otherwise.
func emitSurface(ctx context.Context, prog *eatss.Program, g *eatss.GPU, params map[string]int64, prec eatss.Precision, sizesCSV, path string) {
	if path == "" {
		return
	}
	var sizes []int64
	for _, part := range strings.Split(sizesCSV, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad -surface-sizes entry %q", part))
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		fatal(fmt.Errorf("-surface-sizes is empty"))
	}
	space := prog.Space(sizes)
	pts, stats := prog.ExploreSpaceOpt(ctx, g, space, eatss.RunConfig{
		Params: params, UseShared: true, Precision: prec,
	}, eatss.SweepOptions{})
	s := eatss.NewSweepSurface(prog.Kernel().Name, g.Name, pts)
	eatss.PublishSweepSurface(s)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".csv") {
		err = s.WriteCSV(f)
	} else {
		err = s.WriteJSON(f)
	}
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote energy surface (%d/%d points evaluated, %d skipped) to %s\n",
		stats.Evaluated, len(space), stats.Skipped, path)
}

func fatal(err error) { cli.Fatal(err) }
