// Command servebench load-tests the tile-selection service end to end
// and records the result as BENCH_serve.json. It boots an in-process
// eatssd server on a loopback port and drives it over real HTTP in two
// phases:
//
//   - herd: for every catalog kernel, a burst of identical concurrent
//     cold-cache solve requests — the coalescing contract under fire
//     (one underlying solve per burst, the rest wait on it);
//   - sustained: a mixed solve/simulate stream across the whole
//     catalog, mostly cache hits — the steady-state latency profile.
//
// Kernels whose default formulation is unsatisfiable retry with finer
// warp fractions, the paper's Sec. V-D fallback. The run fails (exit 1)
// on any unexpected error and when no request coalesced — the same
// acceptance bar the daemon itself is held to.
//
// The whole load test repeats for -passes rounds (fresh server and
// connections each round) and the report keeps the round with the
// lowest mean latency: scheduler noise on a shared box only ever
// inflates latencies, so the fastest complete round is the cleanest
// estimate of what the service can do. Every round must still clear
// the acceptance bar.
//
//	servebench                        # full catalog, herd of 8
//	servebench -herd 16 -requests 400 -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	eatss "repro"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// report is the JSON schema of BENCH_serve.json: the shared bench
// envelope plus the service-level load figures. Latency metric names
// end in _ms (lower is better) and throughput in _per_sec (higher is
// better) so the regression guard reads their directions from the
// suffix.
type report struct {
	Kernel       string  `json:"kernel"` // always "catalog": the whole suite is the workload
	GPU          string  `json:"gpu"`
	Points       int     `json:"points"` // catalog kernels exercised
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	HerdRequests int     `json:"herd_requests"`
	Coalesced    int     `json:"coalesced"`
	CoalesceRate float64 `json:"coalesce_rate"`
	Shed         int     `json:"shed"`
	CacheHits    int     `json:"cache_hits"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MeanMs       float64 `json:"mean_ms"`
	RequestsPerS float64 `json:"requests_per_sec"`
	WallSec      float64 `json:"wall_sec"`
	Passes       int     `json:"passes"` // complete rounds run; the best one is reported
	bench.Meta
}

// warpFracs is the paper's coarse-to-fine fallback ladder (Sec. V-D);
// servebench walks it client-side like the end-to-end protocol does.
var warpFracs = []float64{0.5, 0.25, 0.125}

type client struct {
	base string
	http *http.Client

	mu        sync.Mutex
	latencies []float64 // ms
	errors    int
	coalesced int
	cacheHits int
	shed      int
}

// solve posts one solve request and records its latency and flags.
// It reports whether the formulation was satisfiable at this warpfrac;
// an unsatisfiable formulation at a coarse fraction is the protocol's
// expected Sec. V-D fallback path, not a service error.
func (c *client) solve(gpu, kernel string, warpFrac float64) (feasible bool) {
	resp := c.post("/v1/solve", request(gpu, kernel, warpFrac))
	if resp == nil {
		return true // transport error, already counted
	}
	if resp.Status == serve.StatusError && strings.Contains(resp.Error, "unsatisfiable") &&
		warpFrac > warpFracs[len(warpFracs)-1] {
		c.mu.Lock()
		c.errors--
		c.mu.Unlock()
		return false
	}
	return true
}

// simulate posts one tile-less simulate request (solve-then-run).
func (c *client) simulate(gpu, kernel string, warpFrac float64) {
	c.post("/v1/simulate", request(gpu, kernel, warpFrac))
}

// warmConnections opens n concurrent keep-alive connections via
// /healthz so later bursts reuse them instead of dialling mid-burst.
func (c *client) warmConnections(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.http.Get(c.base + "/healthz")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

func request(gpu, kernel string, warpFrac float64) map[string]any {
	req := map[string]any{"kernel": kernel, "gpu": gpu}
	if warpFrac != 0.5 {
		req["warpfrac"] = warpFrac
	}
	return req
}

// post issues one request, folding the outcome into the shared tallies.
func (c *client) post(path string, req map[string]any) *serve.Response {
	body, err := json.Marshal(req)
	if err != nil {
		cli.Fatal(err)
	}
	t0 := time.Now()
	httpResp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	elapsed := float64(time.Since(t0)) / float64(time.Millisecond)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencies = append(c.latencies, elapsed)
	if err != nil {
		c.errors++
		return nil
	}
	defer httpResp.Body.Close()
	var resp serve.Response
	if derr := json.NewDecoder(httpResp.Body).Decode(&resp); derr != nil {
		c.errors++
		return nil
	}
	switch resp.Status {
	case serve.StatusOK:
	case serve.StatusShed:
		c.shed++
	default:
		c.errors++
	}
	if resp.Coalesced {
		c.coalesced++
	}
	if resp.Cached {
		c.cacheHits++
	}
	return &resp
}

func main() {
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier | v100")
	herd := flag.Int("herd", 8, "concurrent identical solve requests per kernel in the herd phase")
	requests := flag.Int("requests", 200, "requests in the sustained phase")
	conc := flag.Int("conc", 16, "concurrent clients in the sustained phase")
	passes := flag.Int("passes", 3, "complete load-test rounds; the lowest-mean-latency round is reported")
	outPath := flag.String("out", "BENCH_serve.json", "output JSON path")
	cli.SetUsage("servebench", "load-test the tile-selection service and record BENCH_serve.json",
		"servebench                        # full catalog, herd of 8",
		"servebench -herd 16 -requests 400 -out BENCH_serve.json")
	flag.Parse()
	if *passes < 1 {
		*passes = 1
	}

	// Run under the daemon's observability posture (metrics, flight ring,
	// per-request tracing into the tail-sampled store) so the measured
	// latencies are what eatssd actually ships, tracing cost included.
	obs.EnableMetrics()
	flight.Default.Enable()

	var best report
	for pass := 0; pass < *passes; pass++ {
		r := runOnce(*gpuName, *herd, *requests, *conc)
		if pass == 0 || r.MeanMs < best.MeanMs {
			best = r
		}
	}
	best.Passes = *passes
	best.Meta = bench.NewMeta(*conc)
	if err := bench.WriteJSON(*outPath, best); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("servebench: %d kernels, %d requests in %.2fs (%.0f req/s): p50 %.2fms p99 %.2fms, %d coalesced (%.0f%% of herd), %d cache hits, %d shed, %d errors (best of %d)\n",
		best.Points, best.Requests, best.WallSec, best.RequestsPerS, best.P50Ms, best.P99Ms,
		best.Coalesced, 100*best.CoalesceRate, best.CacheHits, best.Shed, best.Errors, best.Passes)
}

// runOnce boots a fresh server, drives one complete herd + sustained
// round against it, and enforces the acceptance bar before returning
// the round's figures.
func runOnce(gpuName string, herd, requests, conc int) report {
	trace.Default.Reset() // each round's trace store stands alone
	s := serve.New(serve.Config{})
	srv, err := s.Start("127.0.0.1:0")
	if err != nil {
		cli.Fatal(err)
	}
	defer srv.Close()

	c := &client{
		base: "http://" + srv.Addr(),
		http: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        herd + conc,
				MaxIdleConnsPerHost: herd + conc,
			},
		},
	}
	kernels := eatss.Kernels()

	// Open the keep-alive connections before timing starts, so herd
	// bursts measure the service, not TCP dials — and actually overlap.
	c.warmConnections(max(herd, conc))
	wall0 := time.Now()

	// Phase 1 — herd: per kernel, `herd` identical cold-cache solves at
	// once. Exactly one should execute; the rest coalesce onto it.
	herdRequests := 0
	feasibleFrac := make(map[string]float64, len(kernels))
	for _, kernel := range kernels {
		wf := warpFracs[0]
		for {
			var wg sync.WaitGroup
			var infeasible atomic.Bool
			start := make(chan struct{})
			for i := 0; i < herd; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start // barrier: the whole herd takes off at once
					if !c.solve(gpuName, kernel, wf) {
						infeasible.Store(true)
					}
				}()
			}
			close(start)
			wg.Wait()
			herdRequests += herd
			if !infeasible.Load() {
				feasibleFrac[kernel] = wf
				break
			}
			// Sec. V-D: the formulation was unsatisfiable — retry the
			// whole herd at the next finer warp fraction (a distinct
			// cache key, so it is another cold burst).
			next := -1.0
			for j, f := range warpFracs {
				if f == wf && j+1 < len(warpFracs) {
					next = warpFracs[j+1]
				}
			}
			if next < 0 {
				cli.Fatalf("kernel %s unsatisfiable at every warp fraction", kernel)
			}
			wf = next
		}
	}

	// Phase 2 — sustained: a mixed solve/simulate stream over the warm
	// catalog from `conc` concurrent clients.
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				kernel := kernels[i%len(kernels)]
				if i%2 == 0 {
					c.solve(gpuName, kernel, feasibleFrac[kernel])
				} else {
					c.simulate(gpuName, kernel, feasibleFrac[kernel])
				}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wallSec := time.Since(wall0).Seconds()

	total := len(c.latencies)
	sort.Float64s(c.latencies)
	var sum float64
	for _, l := range c.latencies {
		sum += l
	}
	r := report{
		Kernel:       "catalog",
		GPU:          gpuName,
		Points:       len(kernels),
		Requests:     total,
		Errors:       c.errors,
		HerdRequests: herdRequests,
		Coalesced:    c.coalesced,
		CoalesceRate: float64(c.coalesced) / float64(herdRequests),
		Shed:         c.shed,
		CacheHits:    c.cacheHits,
		P50Ms:        percentile(c.latencies, 0.50),
		P99Ms:        percentile(c.latencies, 0.99),
		MeanMs:       sum / float64(total),
		RequestsPerS: float64(total) / wallSec,
		WallSec:      wallSec,
	}

	// The acceptance bar, enforced on every round: the whole catalog
	// served with zero unexpected errors, and the herd demonstrably
	// coalesced.
	if c.errors > 0 {
		cli.Fatalf("%d requests failed", c.errors)
	}
	if c.coalesced == 0 {
		cli.Fatalf("no request coalesced under a herd of %d — the singleflight layer is not working", herd)
	}
	checkRequestTraces(c)
	return r
}

// checkRequestTraces extends the acceptance bar to the tracing stack:
// after a full round, /debug/requests must have seen every request,
// retained inspectable traces, and the newest retained trace must carry
// a span tree rooted at serve.request.
func checkRequestTraces(c *client) {
	var doc struct {
		Recent []struct {
			TraceID string `json:"trace_id"`
		} `json:"recent"`
		Stats struct {
			Seen     int64 `json:"seen"`
			Retained int64 `json:"retained"`
		} `json:"stats"`
	}
	c.getJSON("/debug/requests?n=5", &doc)
	if doc.Stats.Seen == 0 {
		cli.Fatalf("/debug/requests saw no requests — the serve layer is not recording into the trace store")
	}
	if len(doc.Recent) == 0 || doc.Stats.Retained == 0 {
		cli.Fatalf("/debug/requests retained no traces out of %d seen — tail sampling is broken", doc.Stats.Seen)
	}
	var detail struct {
		Spans []struct {
			Name   string `json:"name"`
			Parent uint64 `json:"parent"`
		} `json:"spans"`
	}
	c.getJSON("/debug/requests?trace="+doc.Recent[0].TraceID, &detail)
	for _, sp := range detail.Spans {
		if sp.Name == "serve.request" && sp.Parent == 0 {
			return
		}
	}
	cli.Fatalf("retained trace %s has no serve.request root span (%d spans)", doc.Recent[0].TraceID, len(detail.Spans))
}

// getJSON fetches an introspection endpoint into v (fatal on failure —
// these run after the load, as acceptance checks).
func (c *client) getJSON(path string, v any) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		cli.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cli.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		cli.Fatalf("GET %s: %v", path, err)
	}
}

// percentile returns the p-quantile of sorted (ascending) samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
