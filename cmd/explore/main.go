// Command explore runs the exhaustive tile-space studies of Secs. II and V:
// it evaluates every tile configuration of a kernel's space on the
// simulated GPU and prints the performance/energy distribution with the
// default-PPCG and EATSS markers.
//
// Examples:
//
//	explore -kernel 2mm                  # the paper's 3,375-variant space
//	explore -kernel mvt -gpu xavier
//	explore -kernel heat-3d -top 20
//	explore -kernel 2mm -j 8             # sweep with 8 parallel workers
package main

import (
	"context"
	"flag"
	"fmt"
	"sort"

	eatss "repro"

	"repro/internal/cli"
)

func main() {
	kernel := flag.String("kernel", "2mm", "kernel name")
	gpuName := flag.String("gpu", "ga100", "GPU: ga100 | xavier")
	top := flag.Int("top", 10, "how many top variants to print")
	paper15 := flag.Bool("paper15", false, "force the 15-sizes-per-dim space for 3D kernels")
	j := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	evalName := flag.String("evaluator", "simulate", "evaluation backend: simulate | symbolic | auto")
	listen := cli.ListenFlag()
	cli.SetUsage("explore", "evaluate a kernel's full tile space on the simulated GPU",
		"explore -kernel 2mm                  # the paper's 3,375-variant space",
		"explore -kernel mvt -gpu xavier",
		"explore -kernel 2mm -j 8             # sweep with 8 parallel workers",
		"explore -kernel 2mm -evaluator auto  # closed-form evaluation with fallback",
		"explore -kernel 2mm -listen :8080    # watch the sweep at /progress")
	flag.Parse()
	defer cli.Serve(*listen)()

	k, err := eatss.Kernel(*kernel)
	if err != nil {
		fatal(err)
	}
	g, err := eatss.GPUByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	params := k.Params
	if g.Name == "Xavier" {
		if std, err := eatss.StandardParams(*kernel); err == nil {
			params = std
		}
	}
	evaluator, err := eatss.ParseEvaluator(*evalName)
	if err != nil {
		fatal(err)
	}
	cfg := eatss.RunConfig{Params: params, UseShared: true, Precision: eatss.FP64, Evaluator: evaluator}

	// One staged analysis serves the whole sweep, the default-PPCG
	// evaluation and the EATSS protocol below.
	prog, err := eatss.Analyze(k, params)
	if err != nil {
		fatal(err)
	}

	var space []map[string]int64
	if *paper15 || k.MaxDepth() <= 3 {
		space = prog.PaperSpace()
	} else {
		space = prog.Space([]int64{4, 8, 16, 32, 64})
	}
	pts, stats := prog.ExploreSpaceOpt(context.Background(), g, space, cfg,
		eatss.SweepOptions{Workers: *j})
	if len(pts) == 0 {
		fatal(fmt.Errorf("no valid variants for %s (%d of %d configurations failed to map)",
			*kernel, stats.Skipped, len(space)))
	}

	def, err := prog.Run(g, prog.DefaultTiles(), cfg)
	if err != nil {
		fatal(err)
	}

	beatPerf, beatEnergy := 0, 0
	for _, p := range pts {
		if p.Result.GFLOPS > def.GFLOPS {
			beatPerf++
		}
		if p.Result.EnergyJ < def.EnergyJ {
			beatEnergy++
		}
	}

	fmt.Printf("kernel %s on %s: %d/%d valid variants (evaluator %s, %d symbolic / %d residual)\n",
		k.Name, g.Name, len(pts), len(space), evaluator, stats.Symbolic, stats.Residual)
	fmt.Printf("P (default PPCG 32^d): %.1f GFLOP/s  %.3f J  PPW %.2f\n", def.GFLOPS, def.EnergyJ, def.PPW)
	fmt.Printf("variants beating default: %.1f%% on perf, %.1f%% on energy\n",
		100*float64(beatPerf)/float64(len(pts)), 100*float64(beatEnergy)/float64(len(pts)))

	if best, err := prog.SelectBest(g, eatss.FP64); err == nil {
		u := best.Chosen.Result
		fmt.Printf("U (EATSS, split %.2f %v): %.1f GFLOP/s  %.3f J  PPW %.2f\n",
			best.Chosen.SharedFrac, best.Chosen.Selection.Tiles, u.GFLOPS, u.EnergyJ, u.PPW)
	}

	byPerf := append([]eatss.SpacePoint(nil), pts...)
	sort.Slice(byPerf, func(i, j int) bool { return byPerf[i].Result.GFLOPS > byPerf[j].Result.GFLOPS })
	fmt.Printf("\ntop %d by performance:\n", *top)
	for i := 0; i < *top && i < len(byPerf); i++ {
		p := byPerf[i]
		fmt.Printf("  %v  %.1f GFLOP/s  %.3f J  PPW %.2f\n", p.Tiles, p.Result.GFLOPS, p.Result.EnergyJ, p.Result.PPW)
	}

	byEnergy := append([]eatss.SpacePoint(nil), pts...)
	sort.Slice(byEnergy, func(i, j int) bool { return byEnergy[i].Result.EnergyJ < byEnergy[j].Result.EnergyJ })
	fmt.Printf("\ntop %d by energy:\n", *top)
	for i := 0; i < *top && i < len(byEnergy); i++ {
		p := byEnergy[i]
		fmt.Printf("  %v  %.1f GFLOP/s  %.3f J  PPW %.2f\n", p.Tiles, p.Result.GFLOPS, p.Result.EnergyJ, p.Result.PPW)
	}
}

func fatal(err error) { cli.Fatal(err) }
