// Command figdata exports the raw data series behind every figure and
// table of the evaluation as CSV files, for regenerating the paper's plots
// with any plotting tool.
//
// Usage:
//
//	figdata -out ./figdata            # everything, GA100
//	figdata -out ./figdata -gpu xavier
//	figdata -out ./figdata -only fig2,fig9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cli"
)

type export struct {
	id    string
	files func(g *arch.GPU) map[string]func(io.Writer) error
}

func exports() []export {
	return []export{
		{"fig1", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig1(g, nil)
			return map[string]func(io.Writer) error{"fig1_power_vs_size.csv": r.WriteCSV}
		}},
		{"fig2", func(g *arch.GPU) map[string]func(io.Writer) error {
			r2 := bench.Fig2("2mm", g)
			rg := bench.Fig2("gemm", g)
			return map[string]func(io.Writer) error{
				"fig2_space_2mm.csv":  r2.WriteCSV,
				"fig2_space_gemm.csv": rg.WriteCSV,
			}
		}},
		{"fig7", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig7(g, nil)
			name := fmt.Sprintf("fig7_polybench_%s.csv", strings.ToLower(g.Name))
			return map[string]func(io.Writer) error{name: r.WriteCSV}
		}},
		{"fig8", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig8(g, nil, nil)
			return map[string]func(io.Writer) error{"fig8_shared_splits.csv": r.WriteCSV}
		}},
		{"fig9", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig9(g, nil)
			return map[string]func(io.Writer) error{"fig9_l2_power_correlation.csv": r.WriteCSV}
		}},
		{"fig10", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig10(g)
			return map[string]func(io.Writer) error{"fig10_nonpolybench.csv": r.WriteCSV}
		}},
		{"fig12", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig12(g, nil, nil)
			return map[string]func(io.Writer) error{"fig12_size_sensitivity.csv": r.WriteCSV}
		}},
		{"fig13", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig13(g, nil)
			return map[string]func(io.Writer) error{"fig13_nonpolybench_sensitivity.csv": r.WriteCSV}
		}},
		{"table4", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Table4()
			return map[string]func(io.Writer) error{"table4_cuxx.csv": r.WriteCSV}
		}},
		{"fig14", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.Fig14(g, nil)
			return map[string]func(io.Writer) error{"fig14_ytopt.csv": r.WriteCSV}
		}},
		{"secvg", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.SecVG(g)
			return map[string]func(io.Writer) error{"secvg_solver_overhead.csv": r.WriteCSV}
		}},
		{"timetile", func(g *arch.GPU) map[string]func(io.Writer) error {
			r := bench.TimeTilingStudy(g, nil, nil)
			return map[string]func(io.Writer) error{"ext_time_tiling.csv": r.WriteCSV}
		}},
	}
}

func main() {
	out := flag.String("out", "figdata", "output directory")
	gpuName := flag.String("gpu", "ga100", "GPU (ga100|xavier|v100)")
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	j := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = sequential)")
	listen := cli.ListenFlag()
	cli.SetUsage("figdata", "export the raw data series behind every figure and table as CSV",
		"figdata -out ./figdata            # everything, GA100",
		"figdata -out ./figdata -gpu xavier",
		"figdata -out ./figdata -only fig2,fig9",
		"figdata -listen :8080             # watch long sweeps at /progress")
	flag.Parse()
	bench.Workers = *j
	defer cli.Serve(*listen)()

	g, ok := arch.ByName(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "figdata: unknown GPU %q (use ga100, xavier or v100)\n", *gpuName)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		cli.Fatal(err)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	wrote := 0
	for _, e := range exports() {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		for name, write := range e.files(g) {
			path := filepath.Join(*out, name)
			f, err := os.Create(path)
			if err != nil {
				cli.Fatal(err)
			}
			if err := write(f); err != nil {
				f.Close()
				cli.Fatal(err)
			}
			if err := f.Close(); err != nil {
				cli.Fatal(err)
			}
			fmt.Println("wrote", path)
			wrote++
		}
	}
	if wrote == 0 {
		fmt.Fprintf(os.Stderr, "figdata: no experiment matched %q\n", *only)
		os.Exit(2)
	}
}
