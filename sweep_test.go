package eatss_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	eatss "repro"

	"repro/internal/obs"
)

// TestExploreSpaceParallelDeterminism is the sweep engine's core
// contract: a parallel sweep (j=8) returns points and stats identical —
// order included — to a sequential one (j=1) on gemm's PaperSpace
// subset. Fresh caches on both sides so every point is really evaluated.
func TestExploreSpaceParallelDeterminism(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	space := eatss.PaperSpace(k)
	if len(space) > 200 {
		space = space[:200]
	}
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}

	seqPts, seqStats := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 1, Cache: eatss.NewEvalCache()})
	parPts, parStats := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 8, Cache: eatss.NewEvalCache()})

	if seqStats != parStats {
		t.Fatalf("stats diverge: sequential %+v, parallel %+v", seqStats, parStats)
	}
	if len(seqPts) == 0 {
		t.Fatal("sequential sweep returned no points")
	}
	if !reflect.DeepEqual(seqPts, parPts) {
		if len(seqPts) != len(parPts) {
			t.Fatalf("point counts diverge: %d vs %d", len(seqPts), len(parPts))
		}
		for i := range seqPts {
			if !reflect.DeepEqual(seqPts[i], parPts[i]) {
				t.Fatalf("point %d diverges:\nsequential %+v\nparallel   %+v", i, seqPts[i], parPts[i])
			}
		}
	}
}

// TestExploreSpaceCancellation: a context cancelled mid-sweep stops the
// engine between evaluations and surfaces the abort in the stats.
func TestExploreSpaceCancellation(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	space := eatss.PaperSpace(k) // 3,375 points — far more than can finish
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	pts, stats := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
		eatss.SweepOptions{Workers: 4, Cache: eatss.NoCache})
	if !stats.Aborted {
		t.Fatalf("sweep of %d points finished before 20ms cancellation: stats %+v", len(space), stats)
	}
	if stats.Evaluated+stats.Skipped >= len(space) {
		t.Fatalf("cancelled sweep still evaluated everything: stats %+v", stats)
	}
	if len(pts) != stats.Evaluated {
		t.Fatalf("partial results inconsistent: %d points, stats %+v", len(pts), stats)
	}

	// Pre-cancelled context: nothing runs at all.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	pts, stats = eatss.ExploreSpaceOpt(done, k, g, space[:10], cfg,
		eatss.SweepOptions{Workers: 4, Cache: eatss.NoCache})
	if len(pts) != 0 || !stats.Aborted || stats.Evaluated != 0 {
		t.Fatalf("pre-cancelled sweep ran: %d points, stats %+v", len(pts), stats)
	}
}

// TestSpacePointTilesDefensiveCopy: mutating the input space after the
// sweep (or a returned point's map) must not corrupt other results.
func TestSpacePointTilesDefensiveCopy(t *testing.T) {
	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32})
	pts, _ := eatss.ExploreSpace(k, g, space, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	want := make(map[string]int64, len(pts[0].Tiles))
	for n, v := range pts[0].Tiles {
		want[n] = v
	}
	for _, m := range space { // caller mutates its space afterwards
		for n := range m {
			m[n] = -1
		}
	}
	if !reflect.DeepEqual(pts[0].Tiles, want) {
		t.Fatalf("SpacePoint.Tiles aliases the input space: %v", pts[0].Tiles)
	}
}

// TestEvalCacheMemoizes: a second sweep over the same space is served
// from the cache, and cached results equal fresh ones.
func TestEvalCacheMemoizes(t *testing.T) {
	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32, 64})
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	cache := eatss.NewEvalCache()

	pts1, stats1 := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 2, Cache: cache})
	if stats1.CacheHits != 0 {
		t.Fatalf("fresh cache reported hits: %+v", stats1)
	}
	pts2, stats2 := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 2, Cache: cache})
	if stats2.CacheHits != len(space) {
		t.Fatalf("second sweep hits = %d, want %d", stats2.CacheHits, len(space))
	}
	if !reflect.DeepEqual(pts1, pts2) {
		t.Fatal("cached sweep diverges from fresh sweep")
	}
	hits, misses := cache.Stats()
	if hits != int64(len(space)) || misses != int64(len(space)) {
		t.Fatalf("cache stats = %d hits / %d misses, want %d / %d", hits, misses, len(space), len(space))
	}

	// A different RunConfig must not collide with cached entries.
	pts3, stats3 := eatss.ExploreSpaceOpt(context.Background(), k, g, space,
		eatss.RunConfig{UseShared: false, Precision: eatss.FP64},
		eatss.SweepOptions{Workers: 2, Cache: cache})
	if stats3.CacheHits != 0 {
		t.Fatalf("config change still hit the cache: %+v", stats3)
	}
	if len(pts3) == len(pts1) && reflect.DeepEqual(pts1, pts3) {
		t.Fatal("UseShared=false sweep returned UseShared=true results")
	}
}

// TestConcurrentSweepsWithObs hammers the sweep engine from several
// goroutines with tracing and metrics enabled. It exists to run under
// -race (the Makefile check gate): it exercises the span sink, the
// metric registry, the shared evaluation cache, and the worker pool all
// under concurrent producers.
func TestConcurrentSweepsWithObs(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()

	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32, 64})
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	cache := eatss.NewEvalCache()

	var wg sync.WaitGroup
	results := make([][]eatss.SpacePoint, 6)
	for i := range results {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ctx, root := obs.Start(context.Background(), "test.sweep")
			pts, _ := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
				eatss.SweepOptions{Workers: 3, Cache: cache})
			root.End()
			results[slot] = pts
		}(i)
	}
	wg.Wait()

	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent sweep %d diverged", i)
		}
	}
	if spans := obs.SpansNamed("eatss.explore_space"); len(spans) != 6 {
		t.Fatalf("explore_space spans = %d, want 6", len(spans))
	}
	if workers := obs.SpansNamed("sweep.worker"); len(workers) == 0 {
		t.Fatal("no worker spans recorded")
	}
}

// TestEvalCacheMetricsConcurrentSweep runs several sweeps over one
// shared cache from concurrent goroutines and checks the accounting
// invariant under -race: every point lookup is classified as exactly
// one hit or miss, so hits+misses equals the total number of points
// swept, and misses never exceeds what the workers could have computed.
func TestEvalCacheMetricsConcurrentSweep(t *testing.T) {
	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32, 64})
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	cache := eatss.NewEvalCache()

	const sweeps = 6
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
				eatss.SweepOptions{Workers: 3, Cache: cache})
		}()
	}
	wg.Wait()

	hits, misses := cache.Stats()
	points := int64(sweeps * len(space))
	if hits+misses != points {
		t.Fatalf("cache accounting leaked: hits %d + misses %d != %d points swept",
			hits, misses, points)
	}
	// Every distinct point misses at least once; concurrent racers may
	// each miss the same point before the first result lands, but a miss
	// count at the sweep total would mean the cache never served anything.
	if misses < int64(len(space)) || misses >= points {
		t.Fatalf("misses = %d, want within [%d, %d)", misses, len(space), points)
	}
	if cache.Len() != len(space) {
		t.Fatalf("cache holds %d entries, want %d distinct points", cache.Len(), len(space))
	}
}

// TestSweepPointLatencyHistogram: with observability on, every fresh
// (cache-miss) evaluation lands one observation in the
// eatss.sweep.point_seconds histogram, and cache hits land none — the
// distribution measures evaluation cost, not lookup cost.
func TestSweepPointLatencyHistogram(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() { obs.Disable(); obs.Reset() }()
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	space := eatss.PaperSpace(k)[:8]
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	cache := eatss.NewEvalCache()
	eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 1, Cache: cache})
	hs := obs.Snapshot().Histograms["eatss.sweep.point_seconds"]
	if hs.Count != int64(len(space)) {
		t.Fatalf("histogram count = %d, want %d (one per fresh point)", hs.Count, len(space))
	}
	// A fully cached second sweep must not add observations.
	eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 1, Cache: cache})
	if hs2 := obs.Snapshot().Histograms["eatss.sweep.point_seconds"]; hs2.Count != hs.Count {
		t.Fatalf("cached sweep added observations: %d -> %d", hs.Count, hs2.Count)
	}
}

// TestSweepPublishesLiveProgress: with observability on, a sweep
// publishes a live progress handle whose counters add up and which is
// marked finished when the sweep returns.
func TestSweepPublishesLiveProgress(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()

	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32})
	_, stats := eatss.ExploreSpaceOpt(context.Background(), k, g, space,
		eatss.RunConfig{UseShared: true, Precision: eatss.FP64},
		eatss.SweepOptions{Workers: 2, Cache: eatss.NewEvalCache()})

	p := obs.CurrentSweep()
	if p == nil {
		t.Fatal("sweep published no live progress")
	}
	if p.Kernel != k.Name || p.Total != int64(len(space)) {
		t.Fatalf("progress = %s/%d, want %s/%d", p.Kernel, p.Total, k.Name, len(space))
	}
	if !p.Finished() {
		t.Fatal("finished sweep not marked finished")
	}
	if p.Done() != int64(len(space)) {
		t.Fatalf("done = %d, want %d", p.Done(), len(space))
	}
	if p.Skipped() != int64(stats.Skipped) {
		t.Fatalf("skipped = %d, stats say %d", p.Skipped(), stats.Skipped)
	}
}

// TestSelectTilesCtxCancellation: a cancelled context interrupts tile
// selection instead of being ignored (the solver polls it between node
// batches) and is reported as an error, not as UNSAT.
func TestSelectTilesCtxCancellation(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eatss.SelectTilesCtx(ctx, k, g, eatss.DefaultOptions())
	if err == nil {
		t.Fatal("cancelled SelectTilesCtx returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}

	// A solver must not carry cancellation across calls: the same
	// kernel/GPU/options solve with a fresh context succeeds.
	if _, err := eatss.SelectTilesCtx(context.Background(), k, g, eatss.DefaultOptions()); err != nil {
		t.Fatalf("fresh-context solve failed after cancelled one: %v", err)
	}
}
