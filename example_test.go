package eatss_test

import (
	"fmt"

	eatss "repro"
)

// ExampleSelectTiles reproduces the paper's worked matmul example
// (Sec. IV-A): on the GA100 with a 50% shared-memory split and
// warp-alignment 16, the solver returns Ti=16, Tj=384, Tk=16.
func ExampleSelectTiles() {
	k, _ := eatss.Kernel("gemm")
	sel, _ := eatss.SelectTiles(k, eatss.GA100(), eatss.DefaultOptions())
	fmt.Printf("Ti=%d Tj=%d Tk=%d\n", sel.Tiles["i"], sel.Tiles["j"], sel.Tiles["k"])
	// Output: Ti=16 Tj=384 Tk=16
}

// ExampleParseKernel defines a custom kernel in the DSL and selects tiles
// for it — the Sec. IV-M "model generator as a library" use case.
func ExampleParseKernel() {
	src := `
kernel axpy2d {
  param N = 4096
  array Y[N][N], X[N][N]
  nest axpy {
    for i in 0..N
    for j in 0..N {
      S: Y[i][j] = Y[i][j] + X[i][j] @flops(2)
    }
  }
}`
	k, err := eatss.ParseKernel(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	eatss.Schedule(k)
	fmt.Println(k.Name, k.MaxDepth())
	// Output: axpy2d 2
}

// ExampleDefaultTiles shows the PPCG baseline every experiment compares
// against.
func ExampleDefaultTiles() {
	k, _ := eatss.Kernel("gemm")
	tiles := eatss.DefaultTiles(k)
	fmt.Println(tiles["i"], tiles["j"], tiles["k"])
	// Output: 32 32 32
}

// ExampleRun compiles and simulates one configuration and prints whether
// EATSS's choice beats the default on performance-per-Watt.
func ExampleRun() {
	k, _ := eatss.Kernel("gemm")
	g := eatss.GA100()
	sel, _ := eatss.SelectTiles(k, g, eatss.DefaultOptions())
	ours, _ := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	def, _ := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	fmt.Println(ours.PPW > def.PPW)
	// Output: true
}
