package eatss_test

// Backend-parity pins for the pluggable evaluation seam: the closed-form
// symbolic evaluator must reproduce the simulator point-by-point — same
// valid set, same energies (to float noise), same winners — across the
// paper's full gemm space and reduced spaces of the whole kernel catalog
// on both GPUs. Residual fallbacks are allowed, but they must be
// reported as such in ExploreStats, never silently.

import (
	"context"
	"math"
	"testing"

	eatss "repro"

	"repro/internal/affine"
)

// parityTol bounds the relative disagreement on float figures. The
// backends share the same model functions, so the budget is float
// noise, not modeling error.
const parityTol = 1e-9

func relDiffF(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// sweepBoth runs the same space through both backends with caching off
// and checks the point-by-point contract, returning the auto-run stats.
func sweepBoth(t *testing.T, kernel string, g *eatss.GPU, space []map[string]int64) eatss.ExploreStats {
	t.Helper()
	k, err := eatss.Kernel(kernel)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	opt := eatss.SweepOptions{Cache: eatss.NoCache}

	simCfg := base
	simCfg.Evaluator = eatss.EvalSimulate
	simPts, simStats := prog.ExploreSpaceOpt(ctx, g, space, simCfg, opt)

	symCfg := base
	symCfg.Evaluator = eatss.EvalAuto
	symPts, symStats := prog.ExploreSpaceOpt(ctx, g, space, symCfg, opt)

	if simStats.Symbolic != 0 || simStats.Residual != 0 {
		t.Fatalf("%s on %s: simulate sweep reported backend attribution %d/%d",
			kernel, g.Name, simStats.Symbolic, simStats.Residual)
	}
	if got, want := symStats.Symbolic+symStats.Residual, len(space); got != want {
		t.Fatalf("%s on %s: auto sweep attributed %d of %d points",
			kernel, g.Name, got, want)
	}
	if len(simPts) != len(symPts) {
		t.Fatalf("%s on %s: valid sets diverge: simulate %d vs symbolic %d points",
			kernel, g.Name, len(simPts), len(symPts))
	}
	simBest, symBest := -1, -1
	for i := range simPts {
		a, b := &simPts[i], &symPts[i]
		for name, v := range a.Tiles {
			if b.Tiles[name] != v {
				t.Fatalf("%s on %s: point %d tile order diverges: %v vs %v",
					kernel, g.Name, i, a.Tiles, b.Tiles)
			}
		}
		if a.Result.Flops != b.Result.Flops ||
			a.Result.L2Sectors != b.Result.L2Sectors ||
			a.Result.DRAMBytes != b.Result.DRAMBytes {
			t.Fatalf("%s on %s: point %d integer counters diverge: %+v vs %+v",
				kernel, g.Name, i, a.Result, b.Result)
		}
		if d := relDiffF(a.Result.EnergyJ, b.Result.EnergyJ); d > parityTol {
			t.Fatalf("%s on %s: point %d energy diverges by %.3e: %g vs %g",
				kernel, g.Name, i, d, a.Result.EnergyJ, b.Result.EnergyJ)
		}
		if d := relDiffF(a.Result.GFLOPS, b.Result.GFLOPS); d > parityTol {
			t.Fatalf("%s on %s: point %d GFLOPS diverges by %.3e", kernel, g.Name, i, d)
		}
		if simBest < 0 || a.Result.EnergyJ < simPts[simBest].Result.EnergyJ {
			simBest = i
		}
		if symBest < 0 || b.Result.EnergyJ < symPts[symBest].Result.EnergyJ {
			symBest = i
		}
	}
	if simBest != symBest {
		t.Fatalf("%s on %s: backends disagree on the minimum-energy point: %d vs %d",
			kernel, g.Name, simBest, symBest)
	}
	return symStats
}

// TestSymbolicSweepParityGemm pins full-space parity on the paper's
// gemm 15^3 study, and that every point had a closed form.
func TestSymbolicSweepParityGemm(t *testing.T) {
	k, err := eatss.Kernel("gemm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := sweepBoth(t, "gemm", eatss.GA100(), prog.PaperSpace())
	if stats.Residual != 0 {
		t.Fatalf("gemm fell back to the simulator on %d points", stats.Residual)
	}
}

// TestSymbolicSweepParityCatalog sweeps a reduced space of every catalog
// kernel on both GPUs through both backends.
func TestSymbolicSweepParityCatalog(t *testing.T) {
	for _, gpu := range []*eatss.GPU{eatss.GA100(), eatss.Xavier()} {
		for _, name := range affine.Catalog() {
			k, err := eatss.Kernel(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := eatss.Analyze(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			space := prog.Space([]int64{8, 32, 200})
			stats := sweepBoth(t, name, gpu, space)
			if stats.Residual > 0 {
				t.Logf("%s on %s: %d/%d residual points", name, gpu.Name, stats.Residual, len(space))
			}
		}
	}
}

// TestSelectBestEvalParity pins the selection protocol: SelectBest on
// the symbolic backend must pick the same configuration with the same
// figures as the simulate backend.
func TestSelectBestEvalParity(t *testing.T) {
	for _, name := range []string{"gemm", "syrk", "jacobi-2d"} {
		k, err := eatss.Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		g := eatss.GA100()
		ctx := context.Background()
		sim, err := eatss.SelectBestEval(ctx, k, g, eatss.FP64, nil, eatss.EvalSimulate)
		if err != nil {
			t.Fatal(err)
		}
		sym, err := eatss.SelectBestEval(ctx, k, g, eatss.FP64, nil, eatss.EvalAuto)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sym.Chosen.Selection.Tiles, sim.Chosen.Selection.Tiles; len(got) != len(want) {
			t.Fatalf("%s: chosen tiles diverge: %v vs %v", name, got, want)
		} else {
			for loop, v := range want {
				if got[loop] != v {
					t.Fatalf("%s: chosen tiles diverge: %v vs %v", name, got, want)
				}
			}
		}
		if d := relDiffF(sym.Chosen.Result.EnergyJ, sim.Chosen.Result.EnergyJ); d > parityTol {
			t.Fatalf("%s: chosen energy diverges by %.3e", name, d)
		}
	}
}
