// Package eatss is a pure-Go reproduction of "Energy-Aware Tile Size
// Selection for Affine Programs on GPUs" (CGO 2024). It bundles the full
// pipeline the paper builds from isl/PPCG, Z3 and two NVIDIA GPUs:
//
//   - an affine-kernel IR and benchmark catalog (Polybench + the paper's
//     non-Polybench kernels),
//   - dependence/reuse analysis,
//   - the EATSS non-linear integer model generator and a finite-domain
//     solver standing in for Z3,
//   - a PPCG-style tiled-code mapper and baseline,
//   - a GPU performance/power simulator standing in for the GA100 and
//     Jetson AGX Xavier testbeds.
//
// The typical flow:
//
//	k, _ := eatss.Kernel("gemm")
//	g := eatss.GA100()
//	sel, _ := eatss.SelectTiles(k, g, eatss.DefaultOptions())
//	res, _ := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{UseShared: true})
//	fmt.Println(res.GFLOPS, res.AvgPowerW, res.PPW)
package eatss

import (
	"context"
	"fmt"
	"time"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/feas"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/ppcg"
	"repro/internal/sched"
	"repro/internal/symbolic"
)

// Protocol-level telemetry: how many configurations the end-to-end
// protocol tried, and how many were silently dropped before this layer
// surfaced them (infeasible formulations, unmappable tile choices).
var (
	mCandidates       = obs.NewCounter("eatss.candidates")
	mInfeasibleSplits = obs.NewCounter("eatss.infeasible_splits")
	mFailedMaps       = obs.NewCounter("eatss.failed_maps")
	mExploreSkipped   = obs.NewCounter("eatss.explore_skipped")
	// mStaticSkips counts (split x warp-fraction) solver calls the
	// static feasibility analysis proved UNSAT without the solver.
	mStaticSkips = obs.NewCounter("eatss.static_skips")
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// AffineKernel is an affine program: arrays, parameters, loop nests.
	AffineKernel = affine.Kernel
	// Precision selects FP32 or FP64 data.
	Precision = affine.Precision
	// GPU is a machine description (resources, throughput, power model).
	GPU = arch.GPU
	// Options configures the EATSS model generator (split factor, warp
	// fraction, precision).
	Options = core.Options
	// Selection is a solved EATSS tile choice.
	Selection = core.Selection
	// Result is a simulated execution (time, GFLOP/s, power, energy,
	// PPW, L2 sectors).
	Result = gpusim.Result
	// MappedKernel is a compiled (tiled + GPU-mapped) kernel.
	MappedKernel = codegen.MappedKernel
)

// Floating-point precisions.
const (
	FP32 = affine.FP32
	FP64 = affine.FP64
)

// Evaluator selects the evaluation backend for tile points: the
// per-point compile+simulate path, the closed-form symbolic plans of
// internal/symbolic (with simulator fallback for residual points), or
// an automatic choice. The zero value is EvalSimulate, so existing
// RunConfigs keep their behaviour.
type Evaluator = symbolic.Evaluator

// Evaluation backends.
const (
	// EvalSimulate compiles and simulates every point (the default).
	EvalSimulate = symbolic.EvalSimulate
	// EvalSymbolic evaluates through the once-per-Program closed-form
	// plan, falling back to simulation only for residual points.
	EvalSymbolic = symbolic.EvalSymbolic
	// EvalAuto lets the library pick the fastest exact backend.
	EvalAuto = symbolic.EvalAuto
)

// ParseEvaluator parses "simulate", "symbolic" or "auto" (the empty
// string means EvalSimulate), as accepted by CLI flags and the eatssd
// request field.
func ParseEvaluator(s string) (Evaluator, error) { return symbolic.ParseEvaluator(s) }

// Kernels returns the names of the built-in benchmark kernels.
func Kernels() []string { return affine.Catalog() }

// PolybenchKernels returns the Polybench subset of the catalog.
func PolybenchKernels() []string { return affine.PolybenchNames() }

// NonPolybenchKernels returns conv-2d, heat-3d and mttkrp (Sec. V-D).
func NonPolybenchKernels() []string { return affine.NonPolybenchNames() }

// Kernel returns a built-in kernel with its EXTRALARGE default parameters.
func Kernel(name string) (*AffineKernel, error) { return affine.Lookup(name) }

// MustKernel is Kernel for static names; it panics on unknown kernels.
func MustKernel(name string) *AffineKernel { return affine.MustLookup(name) }

// StandardParams returns the STANDARD-dataset parameters for a kernel
// (the sizes the paper uses on the Xavier).
func StandardParams(name string) (map[string]int64, error) {
	return affine.StandardParams(name)
}

// ParseKernel parses a kernel written in the affine-kernel DSL (see
// internal/parser's package documentation for the grammar) and validates
// it. The DSL round-trips: WriteKernel(k) re-parses to an equivalent
// kernel.
func ParseKernel(src string) (*AffineKernel, error) { return parser.Parse(src) }

// WriteKernel serializes a kernel into the DSL.
func WriteKernel(k *AffineKernel) string { return parser.Write(k) }

// Schedule permutes each nest's loops into the GPU-canonical order
// (parallel loops outermost, the coalescing loop innermost among them,
// serial loops last), when dependences allow it — the normalization
// PPCG's scheduler performs before tiling. Built-in kernels are already
// canonical; call this on kernels parsed from the DSL in arbitrary loop
// orders. The kernel is modified in place; the returned plans say what
// changed.
func Schedule(k *AffineKernel) []SchedulePlan { return sched.ScheduleKernel(k) }

// SchedulePlan describes one nest's scheduling outcome.
type SchedulePlan = sched.Plan

// GA100 returns the NVIDIA GA100 machine description (Table III).
func GA100() *GPU { return arch.GA100() }

// Xavier returns the Jetson AGX Xavier machine description (Table III).
func Xavier() *GPU { return arch.Xavier() }

// V100 returns an NVIDIA V100-class description — a third platform beyond
// the paper's testbed for generality studies.
func V100() *GPU { return arch.V100() }

// LoadGPU reads and validates a machine description from a JSON file,
// allowing the pipeline to target hardware beyond the built-in presets.
func LoadGPU(path string) (*GPU, error) { return arch.LoadFile(path) }

// GPUByName resolves "ga100"/"a100"/"xavier"/"v100".
func GPUByName(name string) (*GPU, error) {
	g, ok := arch.ByName(name)
	if !ok {
		return nil, fmt.Errorf("eatss: unknown GPU %q (want ga100, xavier or v100)", name)
	}
	return g, nil
}

// ConstraintSlack reports one resource constraint's usage under a
// selection (see Explain).
type ConstraintSlack = core.ConstraintSlack

// Explain evaluates the selection's resource constraints under its chosen
// tiles and reports usage and binding constraints (the paper's
// walkthrough arithmetic: e.g. gemm's L1 capacity binds exactly at
// (Ti+Tk)*Tj = M_L1). The string is a rendered table.
func Explain(k *AffineKernel, g *GPU, sel *Selection) ([]ConstraintSlack, string) {
	return core.Explain(k, g, sel)
}

// DefaultOptions mirrors the paper's GA100 walkthrough (50% split,
// half-warp alignment, FP64).
func DefaultOptions() Options { return core.DefaultOptions() }

// SelectTiles runs the EATSS model generator and solver (Sec. IV).
func SelectTiles(k *AffineKernel, g *GPU, opts Options) (*Selection, error) {
	return core.SelectTiles(k, g, opts)
}

// SelectTilesCtx is SelectTiles with the caller's context threaded
// through, so spans recorded by the model generator and solver nest
// under the caller's internal/obs span (see README's Observability
// section).
func SelectTilesCtx(ctx context.Context, k *AffineKernel, g *GPU, opts Options) (*Selection, error) {
	return core.SelectTilesCtx(ctx, k, g, opts)
}

// DefaultTiles returns PPCG's default 32^d configuration.
func DefaultTiles(k *AffineKernel) map[string]int64 { return ppcg.DefaultTiles(k) }

// RunConfig configures compilation and simulation of one tile choice.
type RunConfig struct {
	// Params overrides the kernel's problem sizes (nil = defaults).
	Params map[string]int64
	// UseShared enables shared-memory staging of non-coalescable
	// references (PPCG --use-shared-memory).
	UseShared bool
	// SharedQuota caps the per-block staging bytes (0 = hardware limit).
	SharedQuota int64
	// Precision selects FP32/FP64 (default FP64, like the paper).
	Precision Precision
	// TimeTileFuse > 1 enables the overlapped time-tiling extension on
	// repeated stencil nests, fusing that many time steps per launch —
	// the inter-step reuse the paper notes PPCG lacks (Sec. V-B). Nests
	// where the fusion is infeasible (no halo, tile too small) keep the
	// step-per-launch behavior.
	TimeTileFuse int64
	// RegTile > 1 enables register micro-tiles: each thread computes an
	// r x r output block held in registers (the optimization separating
	// PPCG code from vendor libraries). Nests where it is infeasible
	// keep one point per thread.
	RegTile int64
	// Verify selects independent certification of each compiled mapping
	// (launch geometry, staging footprint, register budget — see
	// CertifyMapped). A failed certification is a hard compile error.
	Verify VerifyMode
	// Evaluator selects the evaluation backend for Run/ExploreSpace/
	// SelectBest (and, through them, autotune and the eatssd service):
	// EvalSimulate (default) compiles and simulates each point;
	// EvalSymbolic and EvalAuto evaluate through a closed-form plan
	// derived once per Program, falling back to simulation for residual
	// points (configurations using TimeTileFuse, RegTile or Verify are
	// outside the closed-form domain and always simulate). Compile
	// ignores it — a MappedKernel is inherently a compile artifact.
	Evaluator Evaluator
}

// Compile maps a kernel with the given tiles onto the GPU (the PPCG step).
func Compile(k *AffineKernel, g *GPU, tiles map[string]int64, cfg RunConfig) (*MappedKernel, error) {
	return CompileCtx(context.Background(), k, g, tiles, cfg)
}

// CompileCtx is Compile with the caller's context threaded through for
// observability. It stages the analysis fresh; callers compiling more
// than one configuration should Analyze once and use Program.Compile.
func CompileCtx(ctx context.Context, k *AffineKernel, g *GPU, tiles map[string]int64, cfg RunConfig) (*MappedKernel, error) {
	return compileAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, cfg.Params), g, tiles, cfg)
}

// Run compiles and simulates one tile configuration.
func Run(k *AffineKernel, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, error) {
	return RunCtx(context.Background(), k, g, tiles, cfg)
}

// RunCtx is Run with the caller's context threaded through: one enabled
// call produces a compile span and a simulate span under the caller's.
// It stages the analysis fresh; callers evaluating more than one tile
// configuration should Analyze once and use Program.Run.
func RunCtx(ctx context.Context, k *AffineKernel, g *GPU, tiles map[string]int64, cfg RunConfig) (Result, error) {
	res, _, err := evalAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, cfg.Params), g, tiles, cfg)
	return res, err
}

// Candidate is one (EATSS configuration, simulated outcome) pair from
// SelectBest.
type Candidate struct {
	Selection *Selection
	Result    Result
	// SharedFrac is the shared-memory split the configuration used.
	SharedFrac float64
}

// Best is the outcome of the paper's end-to-end protocol.
type Best struct {
	Kernel     string
	GPU        string
	Chosen     Candidate
	Candidates []Candidate
	// SolverCalls and SolveTime aggregate across all candidates
	// (Sec. V-G measures the end-to-end iterative process).
	SolverCalls int
	SolveTime   time.Duration
	// InfeasibleSplits counts shared-memory splits for which no warp
	// fraction yielded a satisfiable formulation (Sec. V-D's failure
	// mode); Skipped counts feasible selections whose tile choice then
	// failed to map/simulate. Together they distinguish "the space was
	// empty" from "everything failed" when Candidates is short.
	InfeasibleSplits int
	Skipped          int
	// Residual counts candidate evaluations that fell back from the
	// requested closed-form backend to per-point simulation (always zero
	// under EvalSimulate, where simulation is the requested backend).
	Residual int
}

// SharedSplits are the three shared-memory levels the paper generates
// configurations for (Sec. V-B: 0%, 50%, 67%).
var SharedSplits = []float64{0.0, 0.5, 0.67}

// WarpFractions are tried coarsest-first; finer fractions unlock
// high-dimensional kernels (Sec. V-D).
var WarpFractions = []float64{0.5, 0.25, 0.125}

// SelectBest runs the paper's full protocol: generate one EATSS
// configuration per shared-memory split (falling back to finer warp
// fractions when the formulation is unsatisfiable), evaluate each, and
// keep the best by performance-per-Watt.
func SelectBest(k *AffineKernel, g *GPU, prec Precision, params map[string]int64) (*Best, error) {
	return SelectBestCtx(context.Background(), k, g, prec, params)
}

// SelectBestCtx is SelectBest with the caller's context threaded
// through: one enabled run records an "eatss.select_best" span with one
// "eatss.candidate" child per shared-memory split. The analysis is
// staged once and shared by all nine potential solver calls and every
// candidate evaluation.
func SelectBestCtx(ctx context.Context, k *AffineKernel, g *GPU, prec Precision, params map[string]int64) (*Best, error) {
	// Solve under the kernel's own params (like SelectTiles), evaluate
	// under the caller's params override — the pre-staged protocol's
	// semantics. The reuse analysis is size-independent, so one artifact
	// serves both.
	return selectBestAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, nil), g, prec, params, EvalSimulate)
}

// SelectBestEval is SelectBestCtx with an explicit evaluation backend:
// under EvalSymbolic/EvalAuto each candidate is evaluated through the
// Program's closed-form plan (with simulator fallback for residual
// configurations) instead of being compiled and simulated.
func SelectBestEval(ctx context.Context, k *AffineKernel, g *GPU, prec Precision, params map[string]int64, eval Evaluator) (*Best, error) {
	return selectBestAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, nil), g, prec, params, eval)
}

func selectBestAnalyzed(ctx context.Context, prog *analysis.Program, g *arch.GPU, prec Precision, params map[string]int64, eval Evaluator) (*Best, error) {
	k := prog.Kernel
	ctx, root := obs.Start(ctx, "eatss.select_best")
	defer root.End()
	root.SetStr("kernel", k.Name)
	root.SetStr("gpu", g.Name)
	best := &Best{Kernel: k.Name, GPU: g.Name}
	for _, split := range SharedSplits {
		cctx, csp := obs.Start(ctx, "eatss.candidate")
		csp.SetFloat("split", split)
		var sel *Selection
		var err error
		staticSkips := 0
		for _, wf := range WarpFractions {
			opts := Options{
				SplitFactor:      split,
				WarpFraction:     wf,
				Precision:        prec,
				ProblemSizeAware: true,
			}
			// Static sibling skip: when the feasibility analysis proves
			// this (split x warp-fraction) formulation's region empty,
			// the solver call is guaranteed UNSAT — record the same
			// failure it would report without paying for the search.
			// The region mirrors the formulation exactly, so the
			// protocol's outcome is unchanged; only the solver time is.
			if cert := feasRegion(prog, g, feas.ModelConfig(split, wf, prec)).Empty; cert != nil {
				staticSkips++
				mStaticSkips.Add(1)
				err = fmt.Errorf("eatss: %s on %s statically infeasible (split %.2f, warpfrac %.3f): %s",
					k.Name, g.Name, split, wf, cert)
				continue
			}
			sel, err = core.SelectTilesAnalyzed(cctx, prog, g, opts)
			if err == nil {
				break
			}
		}
		if staticSkips > 0 {
			csp.SetInt("static_skips", int64(staticSkips))
		}
		if err != nil {
			// This split has no feasible configuration at any warp
			// fraction.
			best.InfeasibleSplits++
			mInfeasibleSplits.Add(1)
			csp.SetBool("infeasible", true)
			csp.End()
			continue
		}
		best.SolverCalls += sel.SolverCalls
		best.SolveTime += sel.SolveTime
		res, info, err := evalAnalyzed(cctx, prog, g, sel.Tiles, RunConfig{
			Params:    params,
			UseShared: split > 0,
			Precision: prec,
			Evaluator: eval,
		})
		csp.SetBool("symbolic", info.symbolic)
		if info.residual {
			best.Residual++
			csp.SetBool("residual", true)
		}
		if err != nil {
			// Feasible formulation, but the chosen tiles did not map.
			best.Skipped++
			mFailedMaps.Add(1)
			csp.SetStr("map_error", err.Error())
			csp.End()
			continue
		}
		mCandidates.Add(1)
		csp.SetFloat("ppw", res.PPW)
		csp.SetFloat("gflops", res.GFLOPS)
		csp.End()
		best.Candidates = append(best.Candidates, Candidate{
			Selection:  sel,
			Result:     res,
			SharedFrac: split,
		})
	}
	if len(best.Candidates) == 0 {
		return nil, fmt.Errorf("eatss: no feasible configuration for %s on %s (%d infeasible splits, %d failed to map)",
			k.Name, g.Name, best.InfeasibleSplits, best.Skipped)
	}
	best.Chosen = best.Candidates[0]
	for _, c := range best.Candidates[1:] {
		if c.Result.PPW > best.Chosen.Result.PPW {
			best.Chosen = c
		}
	}
	root.SetInt("candidates", int64(len(best.Candidates)))
	root.SetInt("solver_calls", int64(best.SolverCalls))
	root.SetFloat("chosen_ppw", best.Chosen.Result.PPW)
	return best, nil
}

// ExploreStats summarizes an ExploreSpace sweep, so callers can
// distinguish "the space was empty" from "every configuration failed to
// map" (and, since the sweep engine became concurrent, "the sweep was
// cancelled part-way").
type ExploreStats struct {
	// Evaluated configurations compiled and simulated successfully.
	Evaluated int
	// Pruned configurations were removed before evaluation by the
	// static feasibility pre-filter (SweepOptions.Prune); zero unless
	// pruning was requested.
	Pruned int
	// Skipped configurations failed to map (execution-model limits).
	Skipped int
	// CacheHits counts configurations served from the memoizing
	// evaluation cache instead of being compiled and simulated.
	CacheHits int
	// Symbolic counts fresh evaluations served by the closed-form
	// backend; Residual counts the points that fell back to per-point
	// simulation although a symbolic evaluator was requested. Both stay
	// zero under EvalSimulate.
	Symbolic int
	Residual int
	// Aborted reports that the context was cancelled before the sweep
	// finished: the returned points cover only the configurations
	// dispatched before cancellation.
	Aborted bool
}

// ExploreSpace simulates every tile configuration in the space (the
// paper's exhaustive exploration studies, Secs. II and V). Configurations
// that fail to map are counted in the returned stats' Skipped field. The
// returned slice is ordered like the input space.
//
// Evaluations run on a bounded worker pool (GOMAXPROCS workers) and are
// memoized in DefaultEvalCache; use ExploreSpaceOpt to control either.
// The parallel sweep returns byte-identical results to a sequential one.
func ExploreSpace(k *AffineKernel, g *GPU, space []map[string]int64, cfg RunConfig) ([]SpacePoint, ExploreStats) {
	return ExploreSpaceCtx(context.Background(), k, g, space, cfg)
}

// ExploreSpaceCtx is ExploreSpace with the caller's context threaded
// through, for observability and cancellation: a cancelled ctx stops the
// sweep between evaluations and returns the points completed so far with
// stats.Aborted set. Note that with tracing enabled every configuration
// records compile/simulate spans (nested under per-worker "sweep.worker"
// spans), so sweeping thousands of points produces a large trace.
func ExploreSpaceCtx(ctx context.Context, k *AffineKernel, g *GPU, space []map[string]int64, cfg RunConfig) ([]SpacePoint, ExploreStats) {
	return ExploreSpaceOpt(ctx, k, g, space, cfg, SweepOptions{})
}

// SpacePoint is one evaluated tile configuration. Tiles is a defensive
// copy owned by the point — it never aliases the input space's maps.
type SpacePoint struct {
	Tiles  map[string]int64
	Result Result
}

// PaperSpace returns the paper's 15-sizes-per-dimension exploration space
// for a kernel (15^d configurations).
func PaperSpace(k *AffineKernel) []map[string]int64 {
	return ppcg.Space(k, ppcg.PaperSpaceSizes())
}

// Space enumerates a tile space over custom candidate sizes.
func Space(k *AffineKernel, sizes []int64) []map[string]int64 {
	return ppcg.Space(k, sizes)
}
