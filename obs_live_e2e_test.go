package eatss_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	eatss "repro"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/serve"
)

// progressDoc mirrors the /progress JSON document served by
// internal/obs/serve — redeclared here so the test checks the wire
// format, not the Go types.
type progressDoc struct {
	Sweep *struct {
		Kernel       string  `json:"kernel"`
		Total        int64   `json:"total"`
		Done         int64   `json:"done"`
		CacheHits    int64   `json:"cache_hits"`
		Finished     bool    `json:"finished"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		EtaSec       float64 `json:"eta_sec"`
	} `json:"sweep"`
	Incumbent *struct {
		Name      string `json:"name"`
		Round     int64  `json:"round"`
		Objective int64  `json:"objective"`
	} `json:"incumbent"`
}

// TestIntrospectionServerDuringSweep is the end-to-end check of the
// live introspection story: with observability and the flight recorder
// on, start the HTTP server on an ephemeral port, run a solve and a
// full gemm paper-space sweep, and scrape the endpoints from the
// outside while the sweep runs. /progress must report the sweep with a
// monotone non-decreasing done count that lands exactly on the space
// size; /metrics must be well-formed Prometheus text; /flight and
// /trace must decode as JSON carrying the recorded events and spans.
func TestIntrospectionServerDuringSweep(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()
	flight.Default.Enable()
	defer flight.Default.Disable()
	flight.Default.Reset()

	srv, err := serve.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	k := eatss.MustKernel("gemm")
	g := eatss.GA100()

	// A solve first, so the incumbent climb is visible on /progress and
	// in the flight recorder alongside the sweep.
	if _, err := eatss.SelectTilesCtx(context.Background(), k, g, eatss.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// The solve's incumbent climb must already be on the flight recorder.
	// Check now: the sweep below records enough events to wrap the ring
	// and evict these early ones.
	if kinds := flightKinds(t, base); !kinds["incumbent"] {
		t.Fatalf("/flight has no incumbent event after a solve; kinds seen: %v", kinds)
	}

	space := eatss.PaperSpace(k) // 3,375 points
	done := make(chan struct{})
	go func() {
		defer close(done)
		eatss.ExploreSpaceOpt(context.Background(), k, g, space,
			eatss.RunConfig{UseShared: true, Precision: eatss.FP64},
			eatss.SweepOptions{Workers: 1, Cache: eatss.NewEvalCache()})
	}()

	// Scrape /progress concurrently with the sweep. The whole space
	// evaluates in well under a second, so don't demand a mid-flight
	// sample — only that every sample we do get is consistent and that
	// the done counter never moves backwards.
	var samples []progressDoc
	lastDone := int64(-1)
	deadline := time.After(30 * time.Second)
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-deadline:
			t.Fatal("sweep did not finish within 30s")
		default:
		}
		doc := scrapeProgress(t, base)
		if doc.Sweep != nil && doc.Sweep.Kernel == k.Name {
			if doc.Sweep.Total != int64(len(space)) {
				t.Fatalf("/progress total = %d, want %d", doc.Sweep.Total, len(space))
			}
			if doc.Sweep.Done < lastDone {
				t.Fatalf("/progress done went backwards: %d after %d", doc.Sweep.Done, lastDone)
			}
			if doc.Sweep.Done > doc.Sweep.Total {
				t.Fatalf("/progress done = %d exceeds total %d", doc.Sweep.Done, doc.Sweep.Total)
			}
			lastDone = doc.Sweep.Done
			samples = append(samples, doc)
		}
	}

	// Final state: the finished sweep is still visible with every point
	// accounted for, and the solve's incumbent survived alongside it.
	final := scrapeProgress(t, base)
	if final.Sweep == nil {
		t.Fatal("/progress lost the sweep after it finished")
	}
	if !final.Sweep.Finished || final.Sweep.Done != int64(len(space)) {
		t.Fatalf("/progress final = done %d finished %t, want %d true",
			final.Sweep.Done, final.Sweep.Finished, len(space))
	}
	// The last incumbent may come from the main climb ("gemm") or the
	// secondary shrink pass ("gemm/shrink") — both belong to this solve.
	if final.Incumbent == nil || !strings.HasPrefix(final.Incumbent.Name, k.Name) {
		t.Fatalf("/progress incumbent = %+v, want one named for %s", final.Incumbent, k.Name)
	}
	if len(samples) == 0 {
		t.Fatal("never observed the sweep on /progress")
	}

	checkPrometheus(t, get(t, base+"/metrics"))

	if kinds := flightKinds(t, base); !kinds["sweep_point"] {
		t.Fatalf("/flight has no sweep_point event after a sweep; kinds seen: %v", kinds)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get(t, base+"/trace"), &trace); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/trace carries no span events")
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return body
}

// flightKinds scrapes /flight and returns the set of event kinds in the
// retained ring, after checking the dump itself is well-formed.
func flightKinds(t *testing.T, base string) map[string]bool {
	t.Helper()
	var doc struct {
		Total  int64 `json:"total"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get(t, base+"/flight"), &doc); err != nil {
		t.Fatalf("/flight is not JSON: %v", err)
	}
	if len(doc.Events) == 0 || doc.Total == 0 {
		t.Fatalf("/flight recorded nothing: total=%d events=%d", doc.Total, len(doc.Events))
	}
	kinds := make(map[string]bool, 8)
	for _, e := range doc.Events {
		kinds[e.Kind] = true
	}
	return kinds
}

func scrapeProgress(t *testing.T, base string) progressDoc {
	t.Helper()
	var doc progressDoc
	if err := json.Unmarshal(get(t, base+"/progress"), &doc); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	return doc
}

var promSeries = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$`)

// promExemplar is the OpenMetrics-style exemplar suffix histogram
// bucket lines may carry: a label set naming the trace and the
// exemplar's own value.
var promExemplar = regexp.MustCompile(`^\{trace_id="[^"]+"\} \S+$`)

// checkPrometheus validates text against the Prometheus exposition
// format: every line is either a # TYPE comment with a known type or a
// `series value` sample whose name fits the metric charset and whose
// value parses as a float; bucket samples may append an exemplar.
func checkPrometheus(t *testing.T, text []byte) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(text), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/metrics is empty")
	}
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Fatalf("/metrics bad TYPE line: %q", line)
			}
			continue
		}
		if j := strings.Index(line, " # "); j >= 0 {
			if !promExemplar.MatchString(line[j+3:]) {
				t.Fatalf("/metrics bad exemplar suffix in %q", line)
			}
			line = line[:j]
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("/metrics bad sample line: %q", line)
		}
		series, value := line[:i], line[i+1:]
		if !promSeries.MatchString(series) {
			t.Fatalf("/metrics bad series name: %q", line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("/metrics bad sample value in %q: %v", line, err)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("/metrics has no samples")
	}
	for _, want := range []string{"eatss_sweep_cache_misses", "gpusim_simulations", "smt_nodes"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %s after a sweep and a solve", want)
		}
	}
}
