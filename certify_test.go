package eatss

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// testdataKernels loads every DSL kernel shipped under testdata/kernels.
func testdataKernels(t *testing.T) map[string]*AffineKernel {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "kernels", "*.kdsl"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*AffineKernel, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		k, err := ParseKernelNamed(string(src), f)
		if err != nil {
			t.Fatal(err)
		}
		Schedule(k)
		out[filepath.Base(f)] = k
	}
	return out
}

// TestCertifyAllSelections is the acceptance gate: every selection the
// pipeline produces for the full catalog plus the shipped DSL kernels,
// on both the GA100 and the Xavier, must pass independent certification
// — solved with Options.Verify=All (a certification failure surfaces as
// a solve error) and re-checked post-hoc via Certify. Kernels whose
// formulation is infeasible at every warp fraction are skipped, like
// the protocol does (Sec. V-D).
func TestCertifyAllSelections(t *testing.T) {
	kernels := make(map[string]*AffineKernel)
	for _, name := range Kernels() {
		kernels[name] = MustKernel(name)
	}
	for name, k := range testdataKernels(t) {
		kernels[name] = k
	}
	gpus := []*GPU{GA100(), Xavier()}
	certified := 0
	for name, k := range kernels {
		for _, g := range gpus {
			var sel *Selection
			var err error
			for _, wf := range WarpFractions {
				sel, err = SelectTiles(k, g, Options{
					SplitFactor:      0.5,
					WarpFraction:     wf,
					Precision:        FP64,
					ProblemSizeAware: true,
					Verify:           VerifyAll,
				})
				if err == nil {
					break
				}
			}
			if err != nil {
				t.Logf("%s on %s: infeasible at every warp fraction (%v)", name, g.Name, err)
				continue
			}
			if err := Certify(k, g, sel); err != nil {
				t.Errorf("%s on %s: post-hoc certification failed: %v", name, g.Name, err)
				continue
			}
			certified++
			// The compiled mapping must certify too.
			if _, err := Compile(k, g, sel.Tiles, RunConfig{
				UseShared: true, Precision: FP64, Verify: VerifyAll,
			}); err != nil {
				t.Errorf("%s on %s: compile under Verify=All failed: %v", name, g.Name, err)
			}
		}
	}
	if certified < 20 {
		t.Fatalf("only %d selections certified; expected the bulk of the catalog x 2 GPUs", certified)
	}
}

// TestInjectedTileBugIsCaught corrupts a certified selection's tiles and
// witness and checks the certifier rejects each corruption — the
// end-to-end "would a solver bug be caught?" drill.
func TestInjectedTileBugIsCaught(t *testing.T) {
	k := MustKernel("gemm")
	g := GA100()
	sel, err := SelectTiles(k, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Certify(k, g, sel); err != nil {
		t.Fatalf("untampered selection must certify: %v", err)
	}

	waf := sel.Opts.WarpAlignmentFactor(g)
	t.Run("perturbed-tile", func(t *testing.T) {
		bad := *sel
		bad.Tiles = map[string]int64{}
		for n, v := range sel.Tiles {
			bad.Tiles[n] = v
		}
		bad.Tiles["i"] += waf / 2 // breaks warp alignment
		err := Certify(k, g, &bad)
		var v *Violation
		if !errors.As(err, &v) {
			t.Fatalf("perturbed tile not caught: %v", err)
		}
	})

	t.Run("mutated-witness-model", func(t *testing.T) {
		if sel.Witness == nil {
			t.Fatal("selection carries no witness")
		}
		bad := *sel
		model := append([]int64(nil), sel.Witness.Model...)
		// Push one variable outside its optimum: the objective-pinning
		// equality (or a resource constraint) must be falsified.
		model[0] += waf
		w := *sel.Witness
		w.Model = model
		bad.Witness = &w
		err := Certify(k, g, &bad)
		var v *Violation
		if !errors.As(err, &v) {
			t.Fatalf("mutated model not caught: %v", err)
		}
	})
}

// TestInjectedMappingBugIsCaught corrupts a compiled mapping's geometry
// and checks CertifyMapped rejects it.
func TestInjectedMappingBugIsCaught(t *testing.T) {
	k := MustKernel("gemm")
	g := GA100()
	sel, err := SelectTiles(k, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mk, err := Compile(k, g, sel.Tiles, RunConfig{UseShared: true, Precision: FP64})
	if err != nil {
		t.Fatal(err)
	}
	if err := CertifyMapped(mk, g); err != nil {
		t.Fatalf("untampered mapping must certify: %v", err)
	}
	mk.Nests[0].GridDims[0]++
	err = CertifyMapped(mk, g)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("corrupted grid not caught: %v", err)
	}
	if v.Label != "grid-dims" {
		t.Fatalf("expected grid-dims, got %q", v.Label)
	}
}

// TestVerifyModeInCoreErrors pins that a selection failing certification
// inside the solve path (Options.Verify) is reported as a hard error
// wrapping the Violation. A correct pipeline never trips this, so the
// test drives the path indirectly: certify-all over a normal solve must
// succeed, and the sample mode must be a strict subset of all.
func TestVerifyModeInCoreErrors(t *testing.T) {
	k := MustKernel("atax")
	g := Xavier()
	opts := DefaultOptions()
	opts.WarpFraction = 0.25
	opts.Verify = VerifyAll
	if _, err := SelectTiles(k, g, opts); err != nil {
		t.Fatalf("certify-all solve failed: %v", err)
	}
	if VerifySample.ShouldVerify("key") && !VerifyAll.ShouldVerify("key") {
		t.Fatal("sample must be a subset of all")
	}
}
