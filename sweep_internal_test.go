package eatss

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestCacheableOutcome pins the memoization guard exactly: only
// outcomes computed under a live context and free of context errors may
// enter an EvalCache.
func TestCacheableOutcome(t *testing.T) {
	live := context.Background()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want bool
	}{
		{"success on live ctx", live, nil, true},
		{"real mapping failure on live ctx", live, errors.New("codegen: tile too large"), true},
		{"cancelled ctx", cancelled, context.Canceled, false},
		{"cancelled ctx, success raced in", cancelled, nil, false},
		{"deadline error on live ctx", live, context.DeadlineExceeded, false},
		{"wrapped cancellation on live ctx", live, fmt.Errorf("eatss: compile gemm: %w", context.Canceled), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cacheableOutcome(tc.ctx, tc.err); got != tc.want {
				t.Fatalf("cacheableOutcome = %t, want %t", got, tc.want)
			}
		})
	}
}
