package eatss_test

// End-to-end observability tests: an enabled run of the real pipeline
// must produce the span tree and metrics the paper's Sec. V-G
// measurements are read from.

import (
	"context"
	"testing"

	eatss "repro"

	"repro/internal/obs"
)

// withObs runs fn with the observability layer enabled and clean, and
// restores the disabled default so other tests keep the zero-cost path.
func withObs(t *testing.T, fn func()) {
	t.Helper()
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	fn()
}

func TestSelectTilesEmitsSolverRoundSpans(t *testing.T) {
	withObs(t, func() {
		k := eatss.MustKernel("gemm")
		g := eatss.GA100()
		ctx, root := obs.Start(context.Background(), "test.pipeline")
		sel, err := eatss.SelectTilesCtx(ctx, k, g, eatss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		root.End()

		// The iterative scheme of Sec. IV-L: each satisfiable round must
		// improve on the previous one, so the recorded objective
		// trajectory is strictly increasing. The shrink pass re-solves
		// under its own span with a different objective, so restrict to
		// the rounds parented under core.solve.
		solves := obs.SpansNamed("core.solve")
		if len(solves) != 1 {
			t.Fatalf("core.solve spans = %d, want 1", len(solves))
		}
		var objectives []int64
		for _, sp := range obs.SpansNamed("smt.round") {
			if sp.Parent != solves[0].ID {
				continue
			}
			if a, ok := sp.Attr("objective"); ok {
				objectives = append(objectives, a.IntV)
			}
		}
		if len(objectives) < 2 {
			t.Fatalf("got %d satisfiable solver rounds, want >= 2", len(objectives))
		}
		for i := 1; i < len(objectives); i++ {
			if objectives[i] <= objectives[i-1] {
				t.Fatalf("objective trajectory not strictly increasing: %v", objectives)
			}
		}
		// The shrink pass re-solves at the fixed optimum, so the last
		// improvement round's objective is the selection's.
		if objectives[len(objectives)-1] < sel.Objective {
			t.Fatalf("trajectory tops out at %d below selection objective %d",
				objectives[len(objectives)-1], sel.Objective)
		}

		// The selection tree must hang off the caller's span.
		sels := obs.SpansNamed("core.select_tiles")
		if len(sels) != 1 {
			t.Fatalf("core.select_tiles spans = %d, want 1", len(sels))
		}
		if sels[0].Parent != root.ID {
			t.Fatalf("core.select_tiles parent = %d, want %d", sels[0].Parent, root.ID)
		}
		if len(obs.SpansNamed("core.model_gen")) != 1 {
			t.Fatal("missing core.model_gen span")
		}
	})
}

func TestPipelinePhasesAndMetrics(t *testing.T) {
	withObs(t, func() {
		k := eatss.MustKernel("gemm")
		g := eatss.GA100()
		ctx, root := obs.Start(context.Background(), "test.pipeline")
		sel, err := eatss.SelectTilesCtx(ctx, k, g, eatss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eatss.RunCtx(ctx, k, g, sel.Tiles, eatss.RunConfig{UseShared: true}); err != nil {
			t.Fatal(err)
		}
		root.End()

		// The acceptance phases: model generation, solver rounds,
		// compilation, simulation.
		for _, phase := range []string{"core.model_gen", "smt.round", "ppcg.compile", "codegen.map_nest", "gpusim.simulate", "gpusim.nest"} {
			if len(obs.SpansNamed(phase)) == 0 {
				t.Errorf("missing %s span", phase)
			}
		}
		// Every span must be finished and properly parented.
		byID := make(map[uint64]bool)
		for _, sp := range obs.Spans() {
			byID[sp.ID] = true
		}
		for _, sp := range obs.Spans() {
			if sp.EndAt.IsZero() {
				t.Errorf("span %s never ended", sp.Name)
			}
			if sp.Parent != 0 && !byID[sp.Parent] {
				t.Errorf("span %s has unknown parent %d", sp.Name, sp.Parent)
			}
		}

		s := obs.Snapshot()
		for _, name := range []string{"smt.solve_calls", "smt.nodes", "core.selections", "ppcg.compiles", "gpusim.l2_sectors"} {
			if s.Counters[name] <= 0 {
				t.Errorf("counter %s = %d, want > 0", name, s.Counters[name])
			}
		}
		if s.Counters["smt.prune.violated"]+s.Counters["smt.prune.interval"]+s.Counters["smt.propagation.tightenings"] == 0 {
			t.Error("solver recorded no prune/propagation activity")
		}
	})
}

func TestSelectBestSurfacesFailureCounts(t *testing.T) {
	// Plain gemm: all three splits feasible, nothing skipped, and the
	// SolveTime aggregation the Best doc promises must be populated.
	best, err := eatss.SelectBest(eatss.MustKernel("gemm"), eatss.GA100(), eatss.FP64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.SolveTime <= 0 {
		t.Fatalf("Best.SolveTime = %v, want > 0", best.SolveTime)
	}
	var sum int64
	for _, c := range best.Candidates {
		sum += int64(c.Selection.SolveTime)
	}
	if int64(best.SolveTime) < sum {
		t.Fatalf("Best.SolveTime %v < sum of candidate times %v", best.SolveTime, sum)
	}
	if best.InfeasibleSplits != 0 || best.Skipped != 0 {
		t.Fatalf("gemm protocol reported failures: %d infeasible, %d skipped",
			best.InfeasibleSplits, best.Skipped)
	}
	if got := len(best.Candidates); got != len(eatss.SharedSplits) {
		t.Fatalf("candidates = %d, want %d", got, len(eatss.SharedSplits))
	}
}
