package eatss

import (
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/verify"
)

// Diagnostics & certification: the static-analysis surface of the
// pipeline. Lint inspects kernels before they enter the pipeline;
// Certify/CertifyMapped re-decide the solver's and the compiler's
// results independently after the fact.

// Diag is one kernel-linter finding (stable Code, Severity, source
// position when the kernel was parsed from DSL text).
type Diag = lint.Diag

// Severity grades a linter finding.
type Severity = lint.Severity

// Linter severities.
const (
	SeverityInfo    = lint.Info
	SeverityWarning = lint.Warning
	SeverityError   = lint.Error
)

// Lint diagnoses a kernel under the given problem sizes (nil uses the
// kernel's defaults): undeclared or unused iterators and arrays,
// duplicate iterator names, provably out-of-bounds subscripts, empty
// loop domains, zero-coefficient subscript anomalies, column-major
// access patterns, and reductions writing a non-invariant location.
// Unlike Validate, it accepts malformed kernels and reports the
// malformations as Error-severity diagnostics.
func Lint(k *AffineKernel, params map[string]int64) []Diag { return lint.Lint(k, params) }

// LintGPU is Lint plus device-dependent feasibility diagnostics: an
// Error-severity "infeasible-region" finding when the static feasible
// tile region (internal/feas) is empty on g, or when every solver
// configuration (shared splits × warp fractions) is statically
// infeasible — i.e. SelectBest is guaranteed to fail. Empty regions
// are proved by prune certificates, not sampled.
func LintGPU(k *AffineKernel, params map[string]int64, g *GPU, prec Precision) []Diag {
	return lint.LintGPU(k, params, g, prec)
}

// LintHasErrors reports whether any diagnostic is Error-severity.
func LintHasErrors(diags []Diag) bool { return lint.HasErrors(diags) }

// RenderDiags joins diagnostics one per line for display.
func RenderDiags(diags []Diag) string { return lint.Render(diags) }

// ParseKernelNamed is ParseKernel with a source name (typically the
// file path), so parse errors and linter diagnostics render
// "file:line:col".
func ParseKernelNamed(src, name string) (*AffineKernel, error) {
	return parser.ParseNamed(src, name)
}

// VerifyMode selects how often the pipeline certifies its own results
// with the independent checker (internal/verify).
type VerifyMode = verify.Mode

// Verification modes.
const (
	// VerifyOff trusts the solver and mapper (the default).
	VerifyOff = verify.Off
	// VerifySample certifies a deterministic 1-in-8 subset of results.
	VerifySample = verify.Sample
	// VerifyAll certifies every result.
	VerifyAll = verify.All
)

// ParseVerifyMode parses "off", "sample" or "all".
func ParseVerifyMode(s string) (VerifyMode, error) { return verify.ParseMode(s) }

// Violation is a certification failure: the named check (SMT constraint
// label or certifier check) the result provably fails. Any Violation is
// a bug — either an infeasible result escaped the solver/mapper or the
// two independent derivations of the paper's bounds disagree.
type Violation = verify.Violation

// Certify independently certifies a tile selection for a kernel: the
// solver's witness is replayed constraint by constraint in arbitrary
// precision, and the warp-alignment, register and capacity bounds are
// re-derived from the GPU description without the solver. nil means
// certified; otherwise the error unwraps to a *Violation.
func Certify(k *AffineKernel, g *GPU, sel *Selection) error {
	return verify.CertifySelection(verify.SelectionFacts{
		Kernel:                  k,
		Params:                  k.Params,
		GPU:                     g,
		Tiles:                   sel.Tiles,
		Witness:                 sel.Witness,
		SplitFactor:             sel.Opts.SplitFactor,
		WarpFraction:            sel.Opts.WarpFraction,
		Precision:               sel.Opts.Precision,
		ProblemSizeAware:        sel.Opts.ProblemSizeAware,
		EnforceThreadBlockLimit: sel.Opts.EnforceThreadBlockLimit,
	})
}

// CertifyMapped cross-checks a compiled kernel's launch geometry,
// shared-memory staging footprint and register budget against the GPU's
// execution-model limits. nil means certified; otherwise the error
// unwraps to a *Violation.
func CertifyMapped(mk *MappedKernel, g *GPU) error {
	return verify.CertifyKernel(mk, g)
}

// compile-time check that the re-exported option field types line up.
var _ = core.Options{Verify: verify.Off}
