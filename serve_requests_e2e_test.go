package eatss_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// traceClient posts /v1 requests and scrapes /debug/requests — the
// operator's view of the serving stack, exercised over real HTTP.
type traceClient struct {
	t    *testing.T
	base string
}

func (c *traceClient) post(path string, req map[string]any, header map[string]string) *serve.Response {
	c.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", c.base+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		hr.Header.Set(k, v)
	}
	httpResp, err := http.DefaultClient.Do(hr)
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer httpResp.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		c.t.Fatalf("POST %s: decode: %v", path, err)
	}
	if echoed := httpResp.Header.Get("traceparent"); len(echoed) != 55 || echoed[3:35] != resp.TraceID {
		c.t.Fatalf("POST %s: traceparent header %q does not echo trace ID %q", path, echoed, resp.TraceID)
	}
	return &resp
}

// spanDoc is the /debug/requests?trace= drill-down wire format.
type spanDoc struct {
	TraceID    string `json:"trace_id"`
	Status     string `json:"status"`
	KeepReason string `json:"keep_reason"`
	Spans      []struct {
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		Name   string `json:"name"`
		Trace  string `json:"trace"`
	} `json:"spans"`
}

// lookup fetches one trace's drill-down; found=false on 404.
func (c *traceClient) lookup(id string) (spanDoc, bool) {
	c.t.Helper()
	resp, err := http.Get(c.base + "/debug/requests?trace=" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return spanDoc{}, false
	}
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("lookup %s: HTTP %d", id, resp.StatusCode)
	}
	var doc spanDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		c.t.Fatal(err)
	}
	return doc, true
}

// TestRequestTraceNestingE2E drives a cold solve through the daemon's
// HTTP handler with a caller-supplied traceparent and verifies the
// retained span tree end to end: the caller's trace ID is adopted and
// echoed, and the tree nests serve.request → core.select_tiles →
// core.solve → smt.round, every span labeled with the trace ID.
func TestRequestTraceNestingE2E(t *testing.T) {
	obs.Reset()
	obs.EnableMetrics() // daemon posture: per-request traces, no global capture
	trace.Default.Configure(0, 1)
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
		trace.Default.Configure(0, 0)
	})

	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	c := &traceClient{t: t, base: ts.URL}

	const id = "11112222333344445555666677778888"
	resp := c.post("/v1/solve", map[string]any{"kernel": "gemm"},
		map[string]string{"traceparent": "00-" + id + "-0123456789abcdef-01"})
	if resp.Status != serve.StatusOK {
		t.Fatalf("solve failed: %s (%s)", resp.Status, resp.Error)
	}
	if resp.TraceID != id {
		t.Fatalf("trace ID = %q, want the ingested traceparent ID %q", resp.TraceID, id)
	}

	doc, ok := c.lookup(id)
	if !ok {
		t.Fatalf("trace %s not retained at sample-every-1", id)
	}
	byID := make(map[uint64]int, len(doc.Spans))
	byName := make(map[string]int, len(doc.Spans))
	roots := 0
	for i, sp := range doc.Spans {
		if sp.Trace != id {
			t.Fatalf("span %s carries trace %q, want %q", sp.Name, sp.Trace, id)
		}
		byID[sp.ID] = i
		if _, seen := byName[sp.Name]; !seen {
			byName[sp.Name] = i
		}
		if sp.Parent == 0 {
			roots++
			if sp.Name != "serve.request" {
				t.Fatalf("root span is %q, want serve.request", sp.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d root spans, want exactly 1", roots)
	}
	// ancestors walks a span's parent chain into a name set.
	ancestors := func(name string) map[string]bool {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("trace has no %q span; got %d spans: %v", name, len(doc.Spans), names(doc))
		}
		out := map[string]bool{}
		for p := doc.Spans[i].Parent; p != 0; {
			j, ok := byID[p]
			if !ok {
				t.Fatalf("span %q has dangling parent %d", name, p)
			}
			out[doc.Spans[j].Name] = true
			p = doc.Spans[j].Parent
		}
		return out
	}
	if a := ancestors("core.select_tiles"); !a["serve.request"] {
		t.Fatalf("core.select_tiles not nested under serve.request: ancestors %v", a)
	}
	if a := ancestors("core.solve"); !a["core.select_tiles"] || !a["serve.request"] {
		t.Fatalf("core.solve ancestry broken: %v", a)
	}
	if a := ancestors("smt.round"); !a["core.solve"] || !a["serve.request"] {
		t.Fatalf("smt.round ancestry broken: %v", a)
	}
}

func names(doc spanDoc) []string {
	out := make([]string, len(doc.Spans))
	for i, sp := range doc.Spans {
		out[i] = sp.Name
	}
	return out
}

// waitQueued polls /healthz until the admission queue reports depth n.
func waitQueued(t *testing.T, base string, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Queued int64 `json:"queued"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission queue never reached depth %d (at %d)", n, st.Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTailSamplingRetainsFailuresE2E drives a mixed load — cache hits,
// hard errors, admission sheds, queue-wait timeouts — through the
// daemon's handler and proves the tail-sampling contract from the
// outside: every single error/timeout/shed trace resolves on
// /debug/requests with its status as the keep reason, while healthy
// cached hits are thinned away.
func TestTailSamplingRetainsFailuresE2E(t *testing.T) {
	obs.Reset()
	obs.EnableMetrics()
	// Healthy traces effectively never win the 1-in-N lottery, so every
	// retained trace below must have earned it as a failure (the slow
	// tail stays quiet too: its judgment needs a 100-request warmup).
	trace.Default.Configure(4096, 1<<20)
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
		trace.Default.Configure(0, 0)
	})

	// One execution slot, one queue seat, and a hook that can hold the
	// slot open: contention is built by construction below, not by
	// timing (on a one-CPU machine millisecond solves never overlap).
	srv := serve.New(serve.Config{MaxInflight: 1, MaxQueue: 1})
	var armed atomic.Bool
	holding := make(chan struct{}, 4)
	release := make(chan struct{})
	srv.SetSolveHook(func(string) {
		if !armed.Load() {
			return
		}
		holding <- struct{}{}
		<-release
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &traceClient{t: t, base: ts.URL}

	var okIDs, badIDs []string
	badStatus := map[string]string{}
	record := func(r *serve.Response) {
		if r.TraceID == "" {
			t.Fatalf("response without trace ID: %+v", r)
		}
		if r.Status == serve.StatusOK {
			okIDs = append(okIDs, r.TraceID)
		} else {
			badIDs = append(badIDs, r.TraceID)
			badStatus[r.TraceID] = r.Status
		}
	}

	// Cache hits: solve twice, the second comes from the selection tier.
	record(c.post("/v1/solve", map[string]any{"kernel": "gemm"}, nil))
	hit := c.post("/v1/solve", map[string]any{"kernel": "gemm"}, nil)
	if !hit.Cached {
		t.Fatalf("second identical solve not cached: %+v", hit)
	}
	record(hit)

	// Hard errors: a kernel the catalog does not have.
	for i := 0; i < 3; i++ {
		r := c.post("/v1/solve", map[string]any{"kernel": "no-such-kernel"}, nil)
		if r.Status != serve.StatusError {
			t.Fatalf("unknown kernel status = %s", r.Status)
		}
		record(r)
	}

	// Sheds and timeouts, by construction against the 1-slot/1-seat
	// gate: a hooked cold solve takes the slot and blocks; a 1ms-deadline
	// compile queues behind it and times out with 504; a second cold
	// solve parks in the lone queue seat; a third arrival overflows the
	// queue and is shed with 429. Then the hook releases and the two
	// parked solves finish healthy.
	armed.Store(true)
	coldBest := func(ni int64) map[string]any {
		return map[string]any{
			"op": "best", "kernel": "gemm",
			"params": map[string]int64{"NI": ni},
		}
	}
	parked := make(chan *serve.Response, 2)
	go func() { parked <- c.post("/v1/best", coldBest(9001), nil) }()
	<-holding // the holder owns the execution slot, blocked in the hook

	r := c.post("/v1/compile", map[string]any{
		"op": "compile", "kernel": "gemm",
		"tiles": map[string]int64{"i": 32, "j": 32, "k": 16}, "timeout_ms": 1,
	}, nil)
	if r.Status != serve.StatusTimeout {
		t.Fatalf("compile behind a held slot: status = %s (%s), want %s", r.Status, r.Error, serve.StatusTimeout)
	}
	record(r)

	go func() { parked <- c.post("/v1/best", coldBest(9002), nil) }()
	waitQueued(t, ts.URL, 1) // it reached the queue seat and is waiting

	r = c.post("/v1/best", coldBest(9003), nil)
	if r.Status != serve.StatusShed {
		t.Fatalf("arrival past a full queue: status = %s (%s), want %s", r.Status, r.Error, serve.StatusShed)
	}
	record(r)

	close(release)
	for i := 0; i < 2; i++ {
		r := <-parked
		if r.Status != serve.StatusOK {
			t.Fatalf("parked solve finished %s (%s), want %s", r.Status, r.Error, serve.StatusOK)
		}
		record(r)
	}
	armed.Store(false)

	// The contract: 100% of failure traces retained, keyed by status.
	for _, id := range badIDs {
		doc, ok := c.lookup(id)
		if !ok {
			t.Fatalf("failure trace %s (status %s) was not retained", id, badStatus[id])
		}
		if doc.Status != badStatus[id] || doc.KeepReason != badStatus[id] {
			t.Fatalf("trace %s retained as status=%s keep_reason=%s, want both %s",
				id, doc.Status, doc.KeepReason, badStatus[id])
		}
	}
	// ... while the healthy hits from the quiet phase were thinned away.
	for _, id := range okIDs {
		if _, ok := c.lookup(id); ok {
			t.Fatalf("healthy trace %s retained despite the 1-in-2^20 sample rate", id)
		}
	}

	// The store's own accounting agrees with the client's view.
	resp, err := http.Get(ts.URL + "/debug/requests?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var overview struct {
		Stats struct {
			Retained int64            `json:"retained"`
			ByReason map[string]int64 `json:"by_reason"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&overview); err != nil {
		t.Fatal(err)
	}
	for _, status := range []string{serve.StatusError, serve.StatusShed, serve.StatusTimeout} {
		if overview.Stats.ByReason[status] == 0 {
			t.Fatalf("stats.by_reason[%s] = 0 after the mixed load: %+v", status, overview.Stats)
		}
	}
	if got := int(overview.Stats.Retained); got < len(badIDs) {
		t.Fatalf("retained %d < %d failures recorded by the client", got, len(badIDs))
	}
}
