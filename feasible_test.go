package eatss_test

// Soundness gate for the static tile-space feasibility analysis: the
// pruned sweep must be exactly the full sweep filtered through the same
// region predicate — same surviving points, same results bit for bit,
// same argmax — and every certificate must survive independent replay.
// cmd/feasbench runs the same gate over the paper's full gemm space.

import (
	"context"
	"reflect"
	"testing"

	eatss "repro"
)

// reduced per-dimension sizes: 8^3 = 512 gemm points, enough to cross
// the register bound (512x512 blocks) while staying test-fast.
var gateSizes = []int64{4, 16, 32, 64, 96, 160, 256, 512}

func TestSweepPruneParity(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	space := eatss.Space(k, gateSizes)
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	ctx := context.Background()

	full, fullStats := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg, eatss.SweepOptions{Cache: eatss.NewEvalCache()})
	pruned, prunedStats := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
		eatss.SweepOptions{Prune: true, Cache: eatss.NewEvalCache()})

	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	region := prog.FeasibleRegion(g, cfg)

	if fullStats.Pruned != 0 {
		t.Fatalf("un-requested pruning: %d points pruned without SweepOptions.Prune", fullStats.Pruned)
	}
	if prunedStats.Pruned == 0 {
		t.Fatalf("no point pruned across %d configurations — the pre-filter is vacuous on gemm", len(space))
	}
	if got := prunedStats.Pruned + prunedStats.Evaluated + prunedStats.Skipped; got != len(space) {
		t.Fatalf("stats don't cover the space: pruned %d + evaluated %d + skipped %d != %d",
			prunedStats.Pruned, prunedStats.Evaluated, prunedStats.Skipped, len(space))
	}

	// The pruned sweep must equal the full sweep filtered by the region.
	var want []eatss.SpacePoint
	for _, p := range full {
		if region.Check(p.Tiles) == nil {
			want = append(want, p)
		}
	}
	if len(pruned) != len(want) {
		t.Fatalf("pruned sweep kept %d points, region-filtered full sweep keeps %d", len(pruned), len(want))
	}
	bestP, bestW := -1, -1
	for i := range want {
		if !reflect.DeepEqual(pruned[i].Tiles, want[i].Tiles) || !reflect.DeepEqual(pruned[i].Result, want[i].Result) {
			t.Fatalf("surviving point %d diverges: %v vs %v", i, pruned[i].Tiles, want[i].Tiles)
		}
		if bestP < 0 || pruned[i].Result.PPW > pruned[bestP].Result.PPW {
			bestP = i
		}
		if bestW < 0 || want[i].Result.PPW > want[bestW].Result.PPW {
			bestW = i
		}
	}
	if bestP != bestW {
		t.Fatalf("argmax-PPW diverges: pruned %v vs filtered %v", pruned[bestP].Tiles, want[bestW].Tiles)
	}

	// Every pruned point carries a certificate that replays under the
	// independent math/big certifier and re-decides UNSAT.
	pcfg := eatss.SweepPruneConfig(eatss.FP64)
	checked := 0
	for _, tiles := range space {
		cert := region.Check(tiles)
		if cert == nil {
			continue
		}
		if err := eatss.CertifyPrune(k, k.Params, g, pcfg, cert); err != nil {
			t.Fatalf("certificate for %v failed independent replay: %v", tiles, err)
		}
		if checked%16 == 0 && !region.UnsatSMT(tiles) {
			t.Fatalf("solver finds pruned point %v satisfiable (claimed %s)", tiles, cert.Constraint)
		}
		checked++
	}
	if checked != prunedStats.Pruned {
		t.Fatalf("region prunes %d points but the sweep pruned %d", checked, prunedStats.Pruned)
	}
}

// The solver's own selections must always survive the sweep pre-filter:
// the region only encodes constraints every core.Options enforces, so a
// prune of a solver-returned tile choice would be unsound by
// construction (and would make the service 422 its own solve results).
func TestSolverSelectionsNeverPruned(t *testing.T) {
	for _, g := range []*eatss.GPU{eatss.GA100(), eatss.Xavier()} {
		for _, name := range eatss.Kernels() {
			k := eatss.MustKernel(name)
			best, err := eatss.SelectBest(k, g, eatss.FP64, nil)
			if err != nil {
				continue // nothing selected, nothing to protect
			}
			prog, aerr := eatss.Analyze(k, nil)
			if aerr != nil {
				t.Fatal(aerr)
			}
			region := prog.FeasibleRegion(g, eatss.RunConfig{Precision: eatss.FP64})
			for _, c := range best.Candidates {
				if cert := region.Check(c.Selection.Tiles); cert != nil {
					t.Errorf("%s on %s: solver selection %v (split %.2f) pruned: %s",
						name, g.Name, c.Selection.Tiles, c.SharedFrac, cert)
				}
			}
		}
	}
}

// FeasibleRegion is memoized on the Program artifact, so a service
// caching Programs per fingerprint derives each region once.
func TestFeasibleRegionMemoized(t *testing.T) {
	prog, err := eatss.Analyze(eatss.MustKernel("gemm"), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := eatss.GA100()
	cfg := eatss.RunConfig{Precision: eatss.FP64}
	a := prog.FeasibleRegion(g, cfg)
	b := prog.FeasibleRegion(g, cfg)
	if a != b {
		t.Fatalf("FeasibleRegion re-derived for identical (GPU, config)")
	}
	if a.Empty != nil {
		t.Fatalf("gemm region unexpectedly empty: %s", a.Empty)
	}
}
