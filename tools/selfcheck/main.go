// Command selfcheck is the repo's self-lint: a stdlib-only static
// analyzer (go/ast + go/parser) enforcing project invariants that `go
// vet` cannot express:
//
//	R1  every span opened with obs.Start / obs.BeginSweep in a function
//	    is closed there — an End()/Finish() call on the span variable
//	    (including inside defers and closures) — or deliberately escapes
//	    (returned, stored, or passed on);
//	R2  every exported function whose name ends in "Ctx" and takes a
//	    context.Context actually uses it (the ...Ctx naming contract:
//	    the suffix promises the context is threaded through);
//	R3  no internal/ package reads the wall clock via time.Now outside
//	    internal/obs/** and internal/bench/** — pipeline code must use
//	    obs.Now() so tests can swap the clock (obs.SetClock);
//	R4  every metric registered through obs.NewCounter / obs.NewGauge /
//	    obs.NewHistogram has a literal, snake_case, dot-namespaced name
//	    ("serve.queue_depth", not "queueDepth" or a computed string),
//	    and each name is registered at exactly one call site — two
//	    registrations of one name would split or shadow the series;
//	R5  no code under internal/serve/** or internal/sweep/** calls
//	    context.Background() or context.TODO() — both packages sit on
//	    request/cancellation paths and must thread the caller's context
//	    (a fresh root context silently detaches work from deadlines,
//	    cancellation and trace propagation).
//
// Test files and testdata are exempt. Run via `make selfcheck`; exits
// nonzero when any rule fires.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []finding
	var metrics []metricReg
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			findings = append(findings, finding{
				pos: token.Position{Filename: path}, rule: "parse", msg: perr.Error()})
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		findings = append(findings, checkFile(fset, file, filepath.ToSlash(rel))...)
		metrics = append(metrics, collectMetricRegs(fset, file)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck:", err)
		os.Exit(2)
	}
	findings = append(findings, checkMetricNames(metrics)...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: [%s] %s\n", f.pos.Filename, f.pos.Line, f.rule, f.msg)
	}
	if len(findings) > 0 {
		fmt.Printf("selfcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("selfcheck: ok")
}

func checkFile(fset *token.FileSet, file *ast.File, rel string) []finding {
	var out []finding
	// Resolve the local names of the obs, time and context imports —
	// rules must survive import aliasing.
	obsName, timeName, ctxName := "", "time", "context"
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch p {
		case "repro/internal/obs":
			obsName = "obs"
			if local != "" {
				obsName = local
			}
		case "time":
			timeName = "time"
			if local != "" {
				timeName = local
			}
		case "context":
			ctxName = "context"
			if local != "" {
				ctxName = local
			}
		}
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if obsName != "" {
			out = append(out, checkSpanPairing(fset, fn, obsName, rel)...)
		}
		out = append(out, checkCtxContract(fset, fn, rel)...)
	}
	if timeRestricted(rel) {
		out = append(out, checkTimeNow(fset, file, timeName, rel)...)
	}
	if ctxRestricted(rel) {
		out = append(out, checkBareContext(fset, file, ctxName)...)
	}
	return out
}

// ctxRestricted reports whether the file lives in a package that must
// thread its caller's context (R5).
func ctxRestricted(rel string) bool {
	for _, p := range []string{"internal/serve/", "internal/sweep/"} {
		if strings.Contains(rel, p) {
			return true
		}
	}
	return false
}

// checkBareContext implements R5 for one restricted file.
func checkBareContext(fset *token.FileSet, file *ast.File, ctxName string) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != ctxName {
			return true
		}
		out = append(out, finding{
			pos:  fset.Position(call.Pos()),
			rule: "R5",
			msg: fmt.Sprintf("context.%s() in a request-path package; thread the caller's context instead",
				sel.Sel.Name),
		})
		return true
	})
	return out
}

// timeRestricted reports whether the file is under internal/ but outside
// the packages allowed to read the wall clock directly.
func timeRestricted(rel string) bool {
	if !strings.Contains(rel, "internal/") {
		return false
	}
	for _, allowed := range []string{"internal/obs/", "internal/bench/"} {
		if strings.Contains(rel, allowed) {
			return false
		}
	}
	return true
}

// spanOpeners are the obs calls that return something requiring an
// explicit close, mapped to the closing method name.
var spanOpeners = map[string]string{
	"Start":      "End",    // obs.Start(ctx, name) -> (ctx, *Span); Span needs End
	"BeginSweep": "Finish", // obs.BeginSweep(...) -> *SweepProgress; needs Finish
}

// checkSpanPairing implements R1 for one function.
func checkSpanPairing(fset *token.FileSet, fn *ast.FuncDecl, obsName, rel string) []finding {
	var out []finding
	type opened struct {
		name  string // local variable bound to the span
		close string // required closing method
		pos   token.Pos
	}
	var spans []opened

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != obsName {
			return true
		}
		closeName, ok := spanOpeners[sel.Sel.Name]
		if !ok {
			return true
		}
		// The span is the last value on the left (obs.Start returns
		// (ctx, span); obs.BeginSweep returns the progress alone).
		tgt := as.Lhs[len(as.Lhs)-1]
		id, ok := tgt.(*ast.Ident)
		if !ok || id.Name == "_" {
			out = append(out, finding{
				pos:  fset.Position(call.Pos()),
				rule: "R1",
				msg: fmt.Sprintf("%s.%s result discarded; the span is never closed",
					obsName, sel.Sel.Name),
			})
			return true
		}
		spans = append(spans, opened{name: id.Name, close: closeName, pos: call.Pos()})
		return true
	})

	for _, sp := range spans {
		if spanClosedOrEscapes(fn.Body, sp.name, sp.close) {
			continue
		}
		out = append(out, finding{
			pos:  fset.Position(sp.pos),
			rule: "R1",
			msg: fmt.Sprintf("span %q opened here has no %s() call in this function and does not escape",
				sp.name, sp.close),
		})
	}
	return out
}

// spanClosedOrEscapes reports whether the function body contains
// name.close() anywhere (including defers and closures), or lets the
// value escape: returned, passed as a call argument, stored into a
// field/map/slice, or reassigned.
func spanClosedOrEscapes(body *ast.BlockStmt, name, close string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == name && sel.Sel.Name == close {
					found = true
					return false
				}
			}
			for _, arg := range n.Args {
				if isIdent(arg, name) {
					found = true // escapes into the callee
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isIdent(r, name) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if isIdent(r, name) {
					found = true // stored somewhere else
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isIdent(el, name) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// checkCtxContract implements R2 for one function.
func checkCtxContract(fset *token.FileSet, fn *ast.FuncDecl, rel string) []finding {
	if !fn.Name.IsExported() || !strings.HasSuffix(fn.Name.Name, "Ctx") {
		return nil
	}
	// Find a parameter of type context.Context.
	var ctxParam string
	for _, field := range fn.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "context" {
			continue
		}
		for _, n := range field.Names {
			ctxParam = n.Name
		}
		if len(field.Names) == 0 {
			ctxParam = "_"
		}
	}
	if ctxParam == "" {
		return nil // no context parameter; the suffix is a misnomer but not this rule's business
	}
	if ctxParam == "_" {
		return []finding{{
			pos:  fset.Position(fn.Pos()),
			rule: "R2",
			msg:  fmt.Sprintf("%s discards its context.Context parameter", fn.Name.Name),
		}}
	}
	used := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		return []finding{{
			pos:  fset.Position(fn.Pos()),
			rule: "R2",
			msg:  fmt.Sprintf("%s never uses its context parameter %q", fn.Name.Name, ctxParam),
		}}
	}
	return nil
}

// metricReg is one obs.New{Counter,Gauge,Histogram} call site. name is
// "" when the first argument is not a plain string literal.
type metricReg struct {
	name string
	kind string // the constructor: NewCounter, NewGauge, NewHistogram
	pos  token.Position
}

// metricCtors are the obs registry constructors R4 audits.
var metricCtors = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
}

// metricNameRE is the house style for registry names: snake_case words,
// at least one dot namespace ("serve.queue_depth", "smt.solve_calls").
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// collectMetricRegs gathers the file's metric registrations for R4
// (which needs the whole tree to catch cross-file duplicates).
func collectMetricRegs(fset *token.FileSet, file *ast.File) []metricReg {
	obsName := ""
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "repro/internal/obs" {
			obsName = "obs"
			if imp.Name != nil {
				obsName = imp.Name.Name
			}
		}
	}
	if obsName == "" {
		return nil
	}
	var out []metricReg
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !metricCtors[sel.Sel.Name] {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != obsName {
			return true
		}
		reg := metricReg{kind: sel.Sel.Name, pos: fset.Position(call.Pos())}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if name, err := strconv.Unquote(lit.Value); err == nil {
				reg.name = name
			}
		}
		out = append(out, reg)
		return true
	})
	return out
}

// checkMetricNames implements R4 over the whole tree's registrations.
func checkMetricNames(regs []metricReg) []finding {
	var out []finding
	first := map[string]token.Position{}
	for _, r := range regs {
		switch {
		case r.name == "":
			out = append(out, finding{pos: r.pos, rule: "R4",
				msg: fmt.Sprintf("obs.%s name is not a string literal; registry names must be auditable constants", r.kind)})
		case !metricNameRE.MatchString(r.name):
			out = append(out, finding{pos: r.pos, rule: "R4",
				msg: fmt.Sprintf("metric name %q is not snake_case dot-namespaced (want e.g. \"serve.queue_depth\")", r.name)})
		default:
			if prev, dup := first[r.name]; dup {
				out = append(out, finding{pos: r.pos, rule: "R4",
					msg: fmt.Sprintf("metric %q already registered at %s:%d; a name must have exactly one registration site", r.name, prev.Filename, prev.Line)})
			} else {
				first[r.name] = r.pos
			}
		}
	}
	return out
}

// checkTimeNow implements R3 for one restricted file.
func checkTimeNow(fset *token.FileSet, file *ast.File, timeName, rel string) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != timeName {
			return true
		}
		out = append(out, finding{
			pos:  fset.Position(sel.Pos()),
			rule: "R3",
			msg:  "internal package reads time.Now directly; use obs.Now() so tests can swap the clock",
		})
		return true
	})
	return out
}
