// Command lintgate runs the kernel linter (internal/lint) over every
// kernel the repo ships — the built-in benchmark catalog and the DSL
// files under testdata/kernels — and fails when any kernel carries an
// Error-severity diagnostic. Warnings are printed but do not fail the
// gate (some catalog kernels legitimately warn, e.g. single-iteration
// batch loops). Run via `make lint-gate`.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/affine"
	"repro/internal/lint"
	"repro/internal/parser"
)

func main() {
	dir := "testdata/kernels"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	errs := 0
	warns := 0

	report := func(source string, diags []lint.Diag) {
		for _, d := range diags {
			fmt.Printf("%s: %s\n", source, d)
			switch d.Severity {
			case lint.Error:
				errs++
			case lint.Warning:
				warns++
			}
		}
	}

	names := affine.Catalog()
	sort.Strings(names)
	for _, name := range names {
		k := affine.MustLookup(name)
		report("catalog/"+name, lint.Lint(k, nil))
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.kdsl"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintgate:", err)
		os.Exit(2)
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintgate:", err)
			os.Exit(2)
		}
		k, err := parser.ParseNamed(string(src), f)
		if err != nil {
			fmt.Printf("%s: parse error: %v\n", f, err)
			errs++
			continue
		}
		report(f, lint.Lint(k, nil))
	}

	fmt.Printf("lintgate: %d kernel(s) checked, %d error(s), %d warning(s)\n",
		len(names)+len(files), errs, warns)
	if errs > 0 {
		os.Exit(1)
	}
}
