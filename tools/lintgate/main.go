// Command lintgate runs the kernel linter (internal/lint) over every
// kernel the repo ships — the built-in benchmark catalog and the DSL
// files under testdata/kernels — and fails when any kernel carries an
// Error-severity diagnostic. Warnings are printed but do not fail the
// gate (some catalog kernels legitimately warn, e.g. single-iteration
// batch loops). It also runs the static feasibility pass (LintGPU)
// over the catalog on both reference GPUs and fails on unexpectedly
// empty feasible regions. Run via `make lint-gate`.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/lint"
	"repro/internal/parser"
)

func main() {
	dir := "testdata/kernels"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	errs := 0
	warns := 0

	report := func(source string, diags []lint.Diag) {
		for _, d := range diags {
			fmt.Printf("%s: %s\n", source, d)
			switch d.Severity {
			case lint.Error:
				errs++
			case lint.Warning:
				warns++
			}
		}
	}

	names := affine.Catalog()
	sort.Strings(names)
	for _, name := range names {
		k := affine.MustLookup(name)
		report("catalog/"+name, lint.Lint(k, nil))
	}

	// Static feasibility pass: every catalog kernel must have a
	// non-empty feasible tile region on both reference GPUs — an
	// unexpectedly empty region means the solver can select nothing
	// (each emptiness verdict is a prune certificate, so a failure here
	// is a provable model regression, not a flaky heuristic).
	for _, g := range []*arch.GPU{arch.GA100(), arch.Xavier()} {
		for _, name := range names {
			k := affine.MustLookup(name)
			for _, d := range lint.LintGPU(k, nil, g, affine.FP64) {
				if d.Code != lint.CodeInfeasibleRegion {
					continue // plain Lint findings already reported above
				}
				report("catalog/"+name+"@"+g.Name, []lint.Diag{d})
			}
		}
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.kdsl"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintgate:", err)
		os.Exit(2)
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintgate:", err)
			os.Exit(2)
		}
		k, err := parser.ParseNamed(string(src), f)
		if err != nil {
			fmt.Printf("%s: parse error: %v\n", f, err)
			errs++
			continue
		}
		report(f, lint.Lint(k, nil))
	}

	fmt.Printf("lintgate: %d kernel(s) checked, %d error(s), %d warning(s)\n",
		len(names)+len(files), errs, warns)
	if errs > 0 {
		os.Exit(1)
	}
}
