package eatss_test

// Staged-compilation parity tests: the Program path must be
// byte-identical to the legacy free-function path, which re-derives the
// analysis per call. Any divergence means the staging split moved
// something tile- or options-dependent into the artifact.

import (
	"context"
	"reflect"
	"testing"

	eatss "repro"

	"repro/internal/obs"
)

// TestProgramExploreSpaceParityGemmPaperSpace sweeps gemm's full
// 15^3-point paper space twice — once through the legacy free function,
// once through a shared Program — with memoization off, and requires
// byte-identical points and stats.
func TestProgramExploreSpaceParityGemmPaperSpace(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}
	space := eatss.PaperSpace(k)

	legacyPts, legacyStats := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Cache: eatss.NoCache})

	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	progPts, progStats := prog.ExploreSpaceOpt(context.Background(), g, space, cfg,
		eatss.SweepOptions{Cache: eatss.NoCache})

	if legacyStats != progStats {
		t.Fatalf("stats diverge: legacy %+v, program %+v", legacyStats, progStats)
	}
	if len(legacyPts) == 0 {
		t.Fatal("sweep produced no points")
	}
	if !reflect.DeepEqual(legacyPts, progPts) {
		for i := range legacyPts {
			if !reflect.DeepEqual(legacyPts[i], progPts[i]) {
				t.Fatalf("point %d diverges:\nlegacy  %+v\nprogram %+v", i, legacyPts[i], progPts[i])
			}
		}
		t.Fatal("results diverge")
	}

	// The shared artifact must also match a fresh analysis per point
	// (the pre-staged pipeline's exact behavior): spot-check a sample.
	for i := 0; i < len(progPts); i += 337 {
		pt := progPts[i]
		res, err := eatss.Run(k, g, pt.Tiles, cfg)
		if err != nil {
			t.Fatalf("fresh Run(%v): %v", pt.Tiles, err)
		}
		if !reflect.DeepEqual(res, pt.Result) {
			t.Fatalf("tiles %v: fresh analysis %+v, shared artifact %+v", pt.Tiles, res, pt.Result)
		}
	}
}

// TestProgramSelectBestParityGemm runs the full three-split protocol
// both ways and requires identical candidates, accounting and choice.
// SolveTime is wall clock and is excluded.
func TestProgramSelectBestParityGemm(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()

	legacy, err := eatss.SelectBest(k, g, eatss.FP64, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eatss.Analyze(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := prog.SelectBest(g, eatss.FP64)
	if err != nil {
		t.Fatal(err)
	}

	stripTimes := func(b *eatss.Best) {
		b.SolveTime = 0
		for _, c := range b.Candidates {
			c.Selection.SolveTime = 0
			c.Selection.Search.Elapsed = 0
			for i := range c.Selection.Search.Incumbents {
				c.Selection.Search.Incumbents[i].Elapsed = 0
			}
		}
	}
	stripTimes(legacy)
	stripTimes(staged)
	if !reflect.DeepEqual(legacy, staged) {
		t.Fatalf("protocol outcomes diverge:\nlegacy  %+v\nprogram %+v", legacy, staged)
	}
}

// TestSweepStagesAnalysisOnce asserts the staging contract the refactor
// exists for: an N-point sweep performs exactly one analysis build, and
// every evaluation consumes the precomputed per-nest analyses.
func TestSweepStagesAnalysisOnce(t *testing.T) {
	withObs(t, func() {
		k := eatss.MustKernel("gemm")
		g := eatss.GA100()
		space := eatss.Space(k, []int64{16, 32}) // 2^3 = 8 points
		pts, stats := eatss.ExploreSpaceOpt(context.Background(), k, g, space,
			eatss.RunConfig{UseShared: true, Precision: eatss.FP64},
			eatss.SweepOptions{Cache: eatss.NoCache})
		if stats.Evaluated == 0 {
			t.Fatal("sweep evaluated nothing")
		}
		s := obs.Snapshot()
		if got := s.Counters["analysis.builds"]; got != 1 {
			t.Fatalf("analysis.builds = %d for a %d-point sweep, want exactly 1", got, len(space))
		}
		if hits := s.Counters["analysis.reuse_hits"]; hits < int64(len(pts)) {
			t.Fatalf("analysis.reuse_hits = %d, want >= %d (one per evaluated point)", hits, len(pts))
		}
	})
}
